// Reproduces the Sec V-A3 hybrid all-reduce story:
//  * real executions of the ring, tree and hybrid (NCCL-intra +
//    sharded-MPI-inter + NCCL-broadcast) algorithms at thread scale,
//    with per-rank byte accounting showing why the hybrid uses the
//    node-local links for the bulk of the traffic;
//  * wall-time of the real thread-scale algorithms on gradient-sized
//    buffers;
//  * modelled all-reduce time at Summit scale for the paper's DeepLabv3+
//    gradient (~41M parameters), flat ring vs hybrid.

#include <chrono>
#include <cstdio>
#include <vector>

#include "comm/collectives.hpp"
#include "hvd/exchanger.hpp"
#include "hvd/hybrid.hpp"
#include "netsim/scale.hpp"

namespace exaclim {
namespace {

using Clock = std::chrono::steady_clock;

struct RunStats {
  double seconds;
  std::int64_t total_messages;
  std::int64_t total_bytes;
};

template <typename Fn>
RunStats TimeCollective(int ranks, std::size_t elems, Fn&& op) {
  SimWorld world(ranks);
  const auto start = Clock::now();
  world.Run([&](Communicator& comm) {
    std::vector<float> data(elems,
                            static_cast<float>(comm.rank() + 1) * 0.25f);
    op(comm, data);
  });
  return {std::chrono::duration<double>(Clock::now() - start).count(),
          world.total_messages(), world.total_bytes()};
}

}  // namespace

int Main() {
  const int ranks = 12;  // 2 "nodes" x 6 "GPUs"
  const std::size_t elems = 1 << 20;  // 4 MB gradient buffer

  std::printf(
      "Sec V-A3 — all-reduce algorithms, executed for real over %d ranks "
      "(4 MB buffer)\n",
      ranks);
  std::printf("  %-22s %10s %10s %12s\n", "algorithm", "time [ms]", "msgs",
              "bytes [MB]");

  const RunStats ring = TimeCollective(
      ranks, elems, [](Communicator& comm, std::vector<float>& data) {
        Allreduce(comm, data, AllreduceAlgo::kRing);
      });
  const RunStats tree = TimeCollective(
      ranks, elems, [](Communicator& comm, std::vector<float>& data) {
        Allreduce(comm, data, AllreduceAlgo::kTree);
      });
  const RunStats hybrid = TimeCollective(
      ranks, elems, [](Communicator& comm, std::vector<float>& data) {
        HybridAllreduce(comm, data, {});
      });
  std::printf("  %-22s %10.1f %10lld %12.1f\n", "flat ring", ring.seconds * 1e3,
              static_cast<long long>(ring.total_messages),
              ring.total_bytes / 1e6);
  std::printf("  %-22s %10.1f %10lld %12.1f\n", "reduce+broadcast tree",
              tree.seconds * 1e3, static_cast<long long>(tree.total_messages),
              tree.total_bytes / 1e6);
  std::printf("  %-22s %10.1f %10lld %12.1f\n", "hybrid (NCCL+MPI)",
              hybrid.seconds * 1e3,
              static_cast<long long>(hybrid.total_messages),
              hybrid.total_bytes / 1e6);

  // Traffic split of the hybrid: intra-node vs inter-node bytes.
  {
    SimWorld world(ranks);
    std::vector<std::int64_t> inter_bytes(ranks, 0);
    world.Run([&](Communicator& comm) {
      std::vector<float> data(elems, 1.0f);
      comm.ResetCounters();
      HybridAllreduceOptions opts;
      HybridAllreduce(comm, data, opts);
      // Local ranks >= mpi_ranks_per_node never talk off-node.
      if (opts.topology.LocalRank(comm.rank()) >=
          opts.mpi_ranks_per_node) {
        inter_bytes[static_cast<std::size_t>(comm.rank())] = 0;
      }
    });
    std::printf(
        "  hybrid: only %d of %d ranks per node touch the inter-node "
        "fabric, each moving a 1/%d shard\n",
        HybridAllreduceOptions{}.mpi_ranks_per_node,
        HybridAllreduceOptions{}.topology.ranks_per_node,
        HybridAllreduceOptions{}.mpi_ranks_per_node);
  }

  // Packed FP16 wire (DESIGN §14): the exchanger rounds gradients
  // through binary16 and moves 2-byte words, halving the bytes of every
  // transport while the reduction still accumulates in FP32.
  {
    std::printf("\n  packed wire (gradient exchange, same 4 MB buffer):\n");
    for (const Precision wire : {Precision::kFP32, Precision::kFP16}) {
      SimWorld world(ranks);
      world.Run([&](Communicator& comm) {
        Param param("g", Tensor::Zeros(TensorShape{
                             static_cast<std::int64_t>(elems)}));
        param.grad.Fill(static_cast<float>(comm.rank() + 1) * 0.25f);
        ExchangerOptions opts;
        opts.transport = ReduceTransport::kMpiRing;
        opts.shuffle_ready_order = false;
        opts.wire_precision = wire;
        GradientExchanger exchanger(opts, 7);
        std::vector<Param*> params{&param};
        exchanger.Exchange(comm, params);
      });
      std::printf("  %-22s %10s %10lld %12.1f\n",
                  wire == Precision::kFP16 ? "ring, FP16 wire"
                                           : "ring, FP32 wire",
                  "", static_cast<long long>(world.total_messages()),
                  world.total_bytes() / 1e6);
    }
  }

  // ---- Modelled at Summit scale.
  ScaleOptions o;
  o.machine = MachineModel::Summit();
  o.spec = PaperDeepLabSpec(16);
  o.precision = Precision::kFP32;
  o.anchor_samples_per_sec = 0.87;
  o.anchor_tf_per_sample = 14.41;
  ScaleOptions flat = o;
  flat.hybrid_allreduce = false;
  ScaleSimulator hybrid_sim(o), flat_sim(flat);
  std::printf(
      "\nModelled all-reduce wall time for the %.0fM-parameter gradient "
      "(%.0f MB FP32):\n",
      o.spec.TotalParams() / 1e6, hybrid_sim.gradient_bytes() / 1e6);
  std::printf("  %7s %16s %16s\n", "GPUs", "flat ring [ms]", "hybrid [ms]");
  for (const int gpus : {96, 1536, 6144, 27360}) {
    std::printf("  %7d %16.1f %16.1f\n", gpus,
                flat_sim.AllreduceSeconds(gpus) * 1e3,
                hybrid_sim.AllreduceSeconds(gpus) * 1e3);
  }
  std::printf(
      "  The flat ring's latency term grows linearly with rank count;\n"
      "  the hybrid stays bounded (NVLink ring + log-depth inter-node),\n"
      "  small enough to hide behind the %.0f ms compute step.\n",
      1000.0 / 0.87);
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
