// Reproduces the Sec V-A1 data-staging results:
//  * multi-threaded reads: 1.79 GB/s with one reader thread -> 11.98 GB/s
//    with eight (a 6.7x improvement);
//  * at 1024 nodes each file is wanted by ~23 nodes on average, so the
//    naive per-node copy script reads the dataset ~23x over (10-20 min and
//    an unusable filesystem), while the distributed stager (disjoint
//    reads + point-to-point redistribution) stages 1024 nodes in under 3
//    minutes and 4500 nodes in under 7;
//  * the algorithm itself runs for real over the comm substrate at thread
//    scale, with the exactly-one-filesystem-read-per-file property
//    checked by instrumentation.

#include <cstdio>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "io/staging.hpp"

namespace exaclim {

int Main() {
  const StagingModel model;

  std::printf("Sec V-A1 — per-node read bandwidth vs reader threads\n");
  std::printf("  threads   GB/s   (paper: 1 -> 1.79, 8 -> 11.98, 6.7x)\n");
  for (const int threads : {1, 2, 4, 8, 16}) {
    std::printf("  %7d %6.2f\n", threads,
                model.NodeReadBandwidth(threads) / 1e9);
  }

  std::printf("\nStaging the 3.5 TB dataset (model), 8 reader threads:\n");
  std::printf("  %6s %12s %15s %15s\n", "nodes", "dup factor",
              "naive [min]", "distributed [min]");
  for (const int nodes : {128, 512, 1024, 2048, 4500}) {
    std::printf("  %6d %12.1f %15.1f %15.2f\n", nodes,
                model.DuplicationFactor(nodes),
                model.NaiveStageSeconds(nodes, 8) / 60.0,
                model.DistributedStageSeconds(nodes, 8) / 60.0);
  }
  std::printf(
      "  (paper: naive at 1024 nodes took 10-20 min; distributed stages\n"
      "   1024 nodes in <3 min and 4500 nodes in <7 min)\n");

  // ---- The real algorithm at thread scale.
  const int ranks = 12;
  const int num_files = 60;
  const int files_per_rank = 20;
  MockGlobalFs fs;
  for (int f = 0; f < num_files; ++f) {
    fs.Put(f, std::vector<std::byte>(1024, static_cast<std::byte>(f)));
  }
  std::vector<std::set<int>> needs(ranks);
  for (int r = 0; r < ranks; ++r) {
    Rng rng(50 + r);
    while (static_cast<int>(needs[static_cast<std::size_t>(r)].size()) <
           files_per_rank) {
      needs[static_cast<std::size_t>(r)].insert(
          static_cast<int>(rng.Int(0, num_files - 1)));
    }
  }
  SimWorld world(ranks);
  world.Run([&](Communicator& comm) {
    const auto staged = StageDataset(
        comm, fs, needs[static_cast<std::size_t>(comm.rank())], num_files);
    EXACLIM_CHECK(staged.size() ==
                      needs[static_cast<std::size_t>(comm.rank())].size(),
                  "staging incomplete");
  });
  std::printf(
      "\nDistributed stager executed for real over %d ranks x %d files "
      "(%d per rank):\n"
      "  filesystem reads: %lld (exactly one per distinct file)\n"
      "  network messages: %lld, bytes shipped point-to-point: %.1f KB\n",
      ranks, num_files, files_per_rank,
      static_cast<long long>(fs.total_reads()),
      static_cast<long long>(world.total_messages()),
      world.total_bytes() / 1024.0);

  MockGlobalFs naive_fs;
  for (int f = 0; f < num_files; ++f) {
    naive_fs.Put(f, std::vector<std::byte>(1024));
  }
  for (int r = 0; r < ranks; ++r) {
    (void)StageNaive(naive_fs, needs[static_cast<std::size_t>(r)]);
  }
  std::printf(
      "  naive script for comparison: %lld filesystem reads (%.1fx "
      "duplication)\n",
      static_cast<long long>(naive_fs.total_reads()),
      static_cast<double>(naive_fs.total_reads()) /
          static_cast<double>(fs.total_reads()));
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
