// Microbenchmarks of the in-process message-passing substrate and the
// collective algorithms built on it.

#include <benchmark/benchmark.h>

#include <vector>

#include "comm/collectives.hpp"
#include "hvd/control_plane.hpp"
#include "hvd/hybrid.hpp"

namespace exaclim {
namespace {

void BM_PingPong(benchmark::State& state) {
  SimWorld world(2);
  for (auto _ : state) {
    world.Run([](Communicator& comm) {
      for (int i = 0; i < 100; ++i) {
        if (comm.rank() == 0) {
          comm.SendValue(1, 1, i);
          (void)comm.RecvValue<int>(1, 2);
        } else {
          (void)comm.RecvValue<int>(0, 1);
          comm.SendValue(0, 2, i);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_PingPong)->Iterations(50);

void BM_AllreduceRing(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  SimWorld world(ranks);
  for (auto _ : state) {
    world.Run([](Communicator& comm) {
      std::vector<float> data(1 << 16, 1.0f);
      Allreduce(comm, data, AllreduceAlgo::kRing);
    });
  }
  state.SetBytesProcessed(state.iterations() * ranks *
                          static_cast<std::int64_t>(sizeof(float) << 16));
}
BENCHMARK(BM_AllreduceRing)->Arg(4)->Arg(8)->Iterations(40);

void BM_HybridAllreduce(benchmark::State& state) {
  SimWorld world(12);
  for (auto _ : state) {
    world.Run([](Communicator& comm) {
      std::vector<float> data(1 << 16, 1.0f);
      HybridAllreduce(comm, data, {});
    });
  }
}
BENCHMARK(BM_HybridAllreduce)->Iterations(40);

void BM_ControlPlaneNegotiation(benchmark::State& state) {
  const bool hierarchical = state.range(0) != 0;
  SimWorld world(16);
  for (auto _ : state) {
    world.Run([&](Communicator& comm) {
      auto plane = MakeControlPlane(hierarchical, 4);
      std::vector<int> ready(128);
      for (int i = 0; i < 128; ++i) ready[static_cast<std::size_t>(i)] = i;
      (void)plane->NegotiateOrder(comm, ready);
    });
  }
  state.SetLabel(hierarchical ? "hierarchical-r4" : "flat");
}
BENCHMARK(BM_ControlPlaneNegotiation)->Arg(0)->Arg(1)->Iterations(40);

}  // namespace
}  // namespace exaclim
