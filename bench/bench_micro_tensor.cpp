// Microbenchmarks of the tensor substrate: elementwise kernels,
// reductions and the binary16 emulation (the per-element cost the FP16
// training mode pays on this CPU substrate).

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "tensor/cast.hpp"
#include "tensor/tensor.hpp"

namespace exaclim {
namespace {

Tensor Big(std::uint64_t seed = 1) {
  Rng rng(seed);
  return Tensor::Uniform(TensorShape{1 << 20}, rng, -10.0f, 10.0f);
}

void BM_TensorAxpy(benchmark::State& state) {
  Tensor a = Big(1);
  const Tensor b = Big(2);
  for (auto _ : state) {
    a.Axpy(0.001f, b);
    benchmark::DoNotOptimize(a.Raw());
  }
  state.SetBytesProcessed(state.iterations() * a.NumElements() * 8);
}
BENCHMARK(BM_TensorAxpy);

void BM_TensorNorm(benchmark::State& state) {
  const Tensor a = Big(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Norm());
  }
  state.SetBytesProcessed(state.iterations() * a.NumElements() * 4);
}
BENCHMARK(BM_TensorNorm);

void BM_RoundTripHalf(benchmark::State& state) {
  Tensor a = Big(4);
  for (auto _ : state) {
    RoundTripHalf(a);
    benchmark::DoNotOptimize(a.Raw());
  }
  state.SetItemsProcessed(state.iterations() * a.NumElements());
}
BENCHMARK(BM_RoundTripHalf);

void BM_PackUnpackHalf(benchmark::State& state) {
  const Tensor a = Big(5);
  std::vector<float> out(static_cast<std::size_t>(a.NumElements()));
  for (auto _ : state) {
    const auto packed = PackHalf(a.Data());
    UnpackHalf(packed, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * a.NumElements());
}
BENCHMARK(BM_PackUnpackHalf);

void BM_CountHalfNonFinite(benchmark::State& state) {
  // The per-step overflow scan dynamic loss scaling performs.
  const Tensor a = Big(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHalfNonFinite(a.Data()));
  }
  state.SetItemsProcessed(state.iterations() * a.NumElements());
}
BENCHMARK(BM_CountHalfNonFinite);

}  // namespace
}  // namespace exaclim
