// Reproduces the Sec V-A2 input-pipeline findings on real NCF files:
//  * with the HDF5-style process-global lock, adding reader workers buys
//    nothing — reads serialise (the pathology that forced the paper from
//    threads to multiprocessing);
//  * without the lock (separate library instances / processes), worker
//    parallelism scales the production rate;
//  * a prefetch queue decouples the consumer: as long as production rate
//    exceeds consumption rate, the "GPU" never waits.
//
// Emits BENCH_input_pipeline.json (median + p16/p84 over repeated runs)
// for the bench-smoke CI stage.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "data/climate.hpp"
#include "io/ncf.hpp"
#include "io/pipeline.hpp"
#include "io/sample_io.hpp"
#include "obs/bench_report.hpp"
#include "stats/stats.hpp"

namespace exaclim {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct PipelineRun {
  double samples_per_sec = 0.0;
  PipelineStats stats;
};

PipelineRun RunPipeline(const std::vector<fs::path>& paths, int workers,
                        bool global_lock, int repeats) {
  const std::int64_t total =
      static_cast<std::int64_t>(paths.size()) * repeats;
  const auto start = Clock::now();
  InputPipeline pipeline(
      [&](std::int64_t index) {
        const auto& path = paths[static_cast<std::size_t>(index) %
                                 paths.size()];
        // Under the HDF5-style lock, read AND decode serialise (the
        // library holds its global lock across the whole operation).
        const auto read_one = [&] {
          const ClimateSample s =
              ReadSampleFile(path, /*use_global_lock=*/false);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          Batch b;
          b.fields = s.fields.Reshaped(TensorShape::NCHW(
              1, kNumClimateChannels, s.height, s.width));
          b.labels = s.labels;
          return b;
        };
        if (global_lock) {
          MutexLock lock(NcfGlobalLock());
          return read_one();
        }
        return read_one();
      },
      total, {.workers = workers, .prefetch_depth = 8});
  std::int64_t count = 0;
  while (pipeline.Next()) ++count;
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  PipelineRun run;
  run.samples_per_sec = static_cast<double>(count) / seconds;
  run.stats = pipeline.Stats();
  return run;
}

// Median throughput over `rounds` runs, recorded into the bench report.
double MeasureConfig(obs::BenchReport& report, std::string_view metric,
                     const std::vector<fs::path>& paths, int workers,
                     bool global_lock) {
  constexpr int kRounds = 3;
  std::vector<double> rates;
  rates.reserve(kRounds);
  for (int r = 0; r < kRounds; ++r) {
    rates.push_back(
        RunPipeline(paths, workers, global_lock, 6).samples_per_sec);
  }
  report.AddSeries(metric, rates);
  return Summarize(rates).median;
}

}  // namespace

int Main() {
  const fs::path dir =
      fs::temp_directory_path() / "exaclim_bench_pipeline";
  fs::create_directories(dir);
  ClimateGenerator gen({.height = 48, .width = 64});
  std::vector<fs::path> paths;
  for (int i = 0; i < 8; ++i) {
    ClimateSample s = gen.Generate(1, i);
    s.labels = s.truth;
    paths.push_back(dir / ("sample" + std::to_string(i) + ".ncf"));
    WriteSampleFile(paths.back(), s);
  }

  obs::BenchReport report("input_pipeline");

  std::printf(
      "Sec V-A2 — input pipeline throughput (real NCF files, 2 ms decode "
      "per sample; median of 3 runs)\n");
  std::printf("  %7s %22s %22s\n", "workers", "HDF5-style lock [smp/s]",
              "lock-free [smp/s]");
  double locked_1 = 0, locked_4 = 0, free_1 = 0, free_4 = 0;
  for (const int workers : {1, 2, 4}) {
    const std::string suffix = "_w" + std::to_string(workers);
    const double locked =
        MeasureConfig(report, "locked" + suffix, paths, workers, true);
    const double lock_free =
        MeasureConfig(report, "lock_free" + suffix, paths, workers, false);
    std::printf("  %7d %22.1f %22.1f\n", workers, locked, lock_free);
    if (workers == 1) {
      locked_1 = locked;
      free_1 = lock_free;
    }
    if (workers == 4) {
      locked_4 = locked;
      free_4 = lock_free;
    }
  }
  std::printf(
      "\n  lock-held scaling 1->4 workers: %.2fx (serialised, as the "
      "paper saw with HDF5)\n"
      "  lock-free scaling 1->4 workers: %.2fx (the multiprocessing "
      "fix)\n",
      locked_4 / locked_1, free_4 / free_1);
  report.AddScalar("locked_scaling_1_to_4", locked_4 / locked_1);
  report.AddScalar("lock_free_scaling_1_to_4", free_4 / free_1);

  // Prefetch-depth effect: a deep queue absorbs producer variability.
  // The new PipelineStats surface shows the consumer-stall time directly.
  std::printf("\n  prefetch depth sweep (4 lock-free workers):\n");
  for (const int depth : {1, 2, 8}) {
    const auto start = Clock::now();
    InputPipeline pipeline(
        [&](std::int64_t index) {
          const ClimateSample s = ReadSampleFile(
              paths[static_cast<std::size_t>(index) % paths.size()]);
          // Variable production latency.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(index % 3 == 0 ? 6 : 1));
          Batch b;
          b.fields = s.fields.Reshaped(TensorShape::NCHW(
              1, kNumClimateChannels, s.height, s.width));
          b.labels = s.labels;
          return b;
        },
        48, {.workers = 4, .prefetch_depth = depth});
    std::int64_t count = 0;
    while (pipeline.Next()) {
      ++count;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));  // "GPU"
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    const PipelineStats stats = pipeline.Stats();
    std::printf(
        "    depth %d: %.1f samples/s (consumer waited %.0f ms total)\n",
        depth, count / seconds, stats.wait_seconds * 1e3);
    report.AddScalar("depth" + std::to_string(depth) + "_samples_per_s",
                     count / seconds);
    report.AddScalar("depth" + std::to_string(depth) + "_wait_s",
                     stats.wait_seconds);
  }

  const auto json_path = report.WriteJsonFile();
  if (!json_path.empty()) {
    std::printf("\n  wrote %s\n", json_path.string().c_str());
  }

  fs::remove_all(dir);
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
