// Reproduces the Sec V-A2 input-pipeline findings on real NCF files:
//  * with the HDF5-style process-global lock, adding reader workers buys
//    nothing — reads serialise (the pathology that forced the paper from
//    threads to multiprocessing);
//  * without the lock (separate library instances / processes), worker
//    parallelism scales the production rate;
//  * a prefetch queue decouples the consumer: as long as production rate
//    exceeds consumption rate, the "GPU" never waits.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "data/climate.hpp"
#include "io/ncf.hpp"
#include "io/pipeline.hpp"
#include "io/sample_io.hpp"

namespace exaclim {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double RunPipeline(const std::vector<fs::path>& paths, int workers,
                   bool global_lock, int repeats) {
  const std::int64_t total =
      static_cast<std::int64_t>(paths.size()) * repeats;
  const auto start = Clock::now();
  InputPipeline pipeline(
      [&](std::int64_t index) {
        const auto& path = paths[static_cast<std::size_t>(index) %
                                 paths.size()];
        // Under the HDF5-style lock, read AND decode serialise (the
        // library holds its global lock across the whole operation).
        const auto read_one = [&] {
          const ClimateSample s =
              ReadSampleFile(path, /*use_global_lock=*/false);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          Batch b;
          b.fields = s.fields.Reshaped(TensorShape::NCHW(
              1, kNumClimateChannels, s.height, s.width));
          b.labels = s.labels;
          return b;
        };
        if (global_lock) {
          MutexLock lock(NcfGlobalLock());
          return read_one();
        }
        return read_one();
      },
      total, {.workers = workers, .prefetch_depth = 8});
  std::int64_t count = 0;
  while (pipeline.Next()) ++count;
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(count) / seconds;
}

}  // namespace

int Main() {
  const fs::path dir =
      fs::temp_directory_path() / "exaclim_bench_pipeline";
  fs::create_directories(dir);
  ClimateGenerator gen({.height = 48, .width = 64});
  std::vector<fs::path> paths;
  for (int i = 0; i < 8; ++i) {
    ClimateSample s = gen.Generate(1, i);
    s.labels = s.truth;
    paths.push_back(dir / ("sample" + std::to_string(i) + ".ncf"));
    WriteSampleFile(paths.back(), s);
  }

  std::printf(
      "Sec V-A2 — input pipeline throughput (real NCF files, 2 ms decode "
      "per sample)\n");
  std::printf("  %7s %22s %22s\n", "workers", "HDF5-style lock [smp/s]",
              "lock-free [smp/s]");
  double locked_1 = 0, locked_4 = 0, free_1 = 0, free_4 = 0;
  for (const int workers : {1, 2, 4}) {
    const double locked = RunPipeline(paths, workers, true, 6);
    const double lock_free = RunPipeline(paths, workers, false, 6);
    std::printf("  %7d %22.1f %22.1f\n", workers, locked, lock_free);
    if (workers == 1) {
      locked_1 = locked;
      free_1 = lock_free;
    }
    if (workers == 4) {
      locked_4 = locked;
      free_4 = lock_free;
    }
  }
  std::printf(
      "\n  lock-held scaling 1->4 workers: %.2fx (serialised, as the "
      "paper saw with HDF5)\n"
      "  lock-free scaling 1->4 workers: %.2fx (the multiprocessing "
      "fix)\n",
      locked_4 / locked_1, free_4 / free_1);

  // Prefetch-depth effect: a deep queue absorbs producer variability.
  std::printf("\n  prefetch depth sweep (4 lock-free workers):\n");
  for (const int depth : {1, 2, 8}) {
    const auto start = Clock::now();
    InputPipeline pipeline(
        [&](std::int64_t index) {
          const ClimateSample s = ReadSampleFile(
              paths[static_cast<std::size_t>(index) % paths.size()]);
          // Variable production latency.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(index % 3 == 0 ? 6 : 1));
          Batch b;
          b.fields = s.fields.Reshaped(TensorShape::NCHW(
              1, kNumClimateChannels, s.height, s.width));
          b.labels = s.labels;
          return b;
        },
        48, {.workers = 4, .prefetch_depth = depth});
    std::int64_t count = 0;
    while (pipeline.Next()) {
      ++count;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));  // "GPU"
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    std::printf("    depth %d: %.1f samples/s\n", depth, count / seconds);
  }

  fs::remove_all(dir);
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
