// Reproduces Fig 4: weak-scaling curves (images/s and sustained PF/s)
// for Tiramisu and DeepLabv3+ on Summit (FP16 + FP32, lag 0/1) and
// Tiramisu FP32 on Piz Daint, using the at-scale performance model with
// single-GPU rates anchored to the paper's measured Fig 2 values (the
// per-machine variability constants are calibrated once against the
// endpoint efficiencies; every other point is model output).

#include <cstdio>
#include <vector>

#include "netsim/throughput_series.hpp"

namespace exaclim {
namespace {

void PrintSweep(const char* title, ScaleSimulator& sim,
                const std::vector<int>& gpu_counts) {
  std::printf("%s\n", title);
  std::printf("  %7s %12s %10s %7s %10s\n", "GPUs", "images/s", "PF/s",
              "eff", "ideal im/s");
  for (const int g : gpu_counts) {
    const ScalePoint p = sim.Simulate(g);
    std::printf("  %7d %12.1f %10.2f %6.1f%% %10.1f\n", g, p.images_per_sec,
                p.pflops_sustained, p.efficiency * 100.0,
                g * sim.single_gpu_rate());
  }
  std::printf("\n");
}

}  // namespace

int Main() {
  std::printf("Fig 4 — weak scaling (model; anchors from Fig 2)\n\n");
  const std::vector<int> summit_gpus{6,    96,   384,  1536, 4608,
                                     6144, 12288, 27360};
  const std::vector<int> daint_gpus{1, 64, 256, 512, 1024, 2048, 4096, 5300};

  // ---- Fig 4a: Tiramisu.
  {
    ScaleOptions o;
    o.machine = MachineModel::Summit();
    o.spec = PaperTiramisuSpec(16);
    o.lag = 1;
    o.precision = Precision::kFP32;
    o.local_batch = 1;
    o.anchor_samples_per_sec = 1.91;
    o.anchor_tf_per_sample = 4.188;
    ScaleSimulator fp32(o);
    PrintSweep("Tiramisu / Summit / FP32 / lag 1  (paper: 176.8 PF/s "
               "sustained at 24576 GPUs, >90% efficiency)",
               fp32, summit_gpus);

    o.precision = Precision::kFP16;
    o.local_batch = 2;
    o.anchor_samples_per_sec = 5.00;
    ScaleSimulator fp16(o);
    PrintSweep("Tiramisu / Summit / FP16 / lag 1  (paper: 492.2 PF/s "
               "sustained at 24576 GPUs)",
               fp16, summit_gpus);
  }
  {
    ScaleOptions o;
    o.machine = MachineModel::PizDaint();
    Tiramisu::Config cfg = Tiramisu::Config::Modified();
    cfg.in_channels = 4;
    o.spec = BuildTiramisuSpec(cfg, 768, 1152);
    o.precision = Precision::kFP32;
    o.local_batch = 1;
    o.lag = 0;
    o.hybrid_allreduce = false;  // 1 GPU/node: no NCCL phase (Sec V-A3)
    o.anchor_samples_per_sec = 1.20;
    o.anchor_tf_per_sample = 3.703;
    ScaleSimulator sim(o);
    PrintSweep("Tiramisu / Piz Daint / FP32  (paper: 21.0 PF/s sustained, "
               "83.4% @2048, 79.0% @5300)",
               sim, daint_gpus);
  }

  // ---- Fig 4b: DeepLabv3+ on Summit.
  for (const int lag : {0, 1}) {
    ScaleOptions o;
    o.machine = MachineModel::Summit();
    o.spec = PaperDeepLabSpec(16);
    o.lag = lag;
    o.precision = Precision::kFP32;
    o.local_batch = 1;
    o.anchor_samples_per_sec = 0.87;
    o.anchor_tf_per_sample = 14.41;
    ScaleSimulator fp32(o);
    char title[160];
    std::snprintf(title, sizeof(title),
                  "DeepLabv3+ / Summit / FP32 / lag %d  (paper: 325.8 PF/s "
                  "sustained, 90.7%% @27360, lag 1 best)",
                  lag);
    PrintSweep(title, fp32, summit_gpus);

    o.precision = Precision::kFP16;
    o.local_batch = 2;
    o.anchor_samples_per_sec = 2.67;
    ScaleSimulator fp16(o);
    std::snprintf(title, sizeof(title),
                  "DeepLabv3+ / Summit / FP16 / lag %d  (paper: 999.0 PF/s "
                  "sustained, 1.13 EF/s peak, 90.7%% @27360)",
                  lag);
    PrintSweep(title, fp16, summit_gpus);
  }

  // Sec VI statistics: realise the per-step throughput series with
  // stochastic stragglers and report median + central-68% CI — the error
  // bars of Fig 4.
  {
    ScaleOptions o16;
    o16.machine = MachineModel::Summit();
    o16.spec = PaperDeepLabSpec(16);
    o16.lag = 1;
    o16.precision = Precision::kFP16;
    o16.local_batch = 2;
    o16.anchor_samples_per_sec = 2.67;
    o16.anchor_tf_per_sample = 14.41;
    ScaleSimulator sim(o16);
    std::printf(
        "Per-step throughput statistics (median [0.16, 0.84] percentiles, "
        "60 steps):\n");
    for (const int gpus : {1536, 6144, 27360}) {
      const auto series = SampleThroughputSeries(sim, gpus, 60, 2018);
      std::printf(
          "  %6d GPUs: %8.0f images/s  [%8.0f, %8.0f]  -> %6.1f PF/s "
          "median\n",
          gpus, series.summary.median, series.summary.lo,
          series.summary.hi, series.pflops_median);
    }
    std::printf("\n");
  }

  // Overlap ablation (DESIGN §14): the same FP32 DeepLabv3+ sweep with
  // the exchange serialized after backward instead of hidden behind it —
  // the configuration the pre-overlap exchanger actually executed. The
  // gap is the exposed all-reduce + control time the as-ready bucketed
  // exchange wins back (bench_overlap cross-checks the executed ratio).
  {
    ScaleOptions o;
    o.machine = MachineModel::Summit();
    o.spec = PaperDeepLabSpec(16);
    o.lag = 0;
    o.precision = Precision::kFP32;
    o.local_batch = 1;
    o.anchor_samples_per_sec = 0.87;
    o.anchor_tf_per_sample = 14.41;
    ScaleOptions serial = o;
    serial.overlap_exchange = false;
    ScaleSimulator with(o), without(serial);
    std::printf(
        "DeepLabv3+ / Summit / FP32 — exchange overlap ablation "
        "(images/s)\n");
    std::printf("  %7s %14s %14s %9s\n", "GPUs", "overlapped",
                "serialized", "speedup");
    for (const int g : summit_gpus) {
      const double on = with.Simulate(g).images_per_sec;
      const double off = without.Simulate(g).images_per_sec;
      std::printf("  %7d %14.1f %14.1f %8.2fx\n", g, on, off, on / off);
    }
    std::printf("\n");
  }

  // Peak estimate: sustained is the median over steps; the best steps ran
  // ~13% above sustained (1.13 EF/s peak vs 0.999 sustained).
  ScaleOptions o;
  o.machine = MachineModel::Summit();
  o.spec = PaperDeepLabSpec(16);
  o.lag = 1;
  o.precision = Precision::kFP16;
  o.local_batch = 2;
  o.anchor_samples_per_sec = 2.67;
  o.anchor_tf_per_sample = 14.41;
  const ScalePoint p = ScaleSimulator(o).Simulate(27360);
  std::printf(
      "FP16 DeepLabv3+ at 27360 GPUs: sustained %.1f PF/s, peak-step "
      "estimate %.2f EF/s (paper: 999.0 PF/s sustained, 1.13 EF/s peak)\n",
      p.pflops_sustained, p.pflops_sustained * 1.13 / 1e3);
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
