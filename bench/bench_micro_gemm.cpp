// Microbenchmarks of the GEMM kernel that backs im2col convolution —
// the CPU stand-in for the cuDNN implicit-GEMM kernels — plus the kernel
// engine comparison, which times the packed microkernel engine against
// the reference blocked walk and records GFLOP/s through BenchReport
// (BENCH_micro_gemm.json; the ci.sh perf-smoke stage asserts the
// reference never beats the packed engine).
//
// Custom main: google-benchmark cases run first (skip them with
// --benchmark_filter='-.*'), then the kernel comparison.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/bench_report.hpp"
#include "stats/stats.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_kernel.hpp"

namespace exaclim {
namespace {

void BM_GemmSquare(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = rng.Uniform(-1, 1);
  for (auto& v : b) v = rng.Uniform(-1, 1);
  for (auto _ : state) {
    Gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmConvShaped(benchmark::State& state) {
  // The im2col shape of a 3x3 conv, 64->64 channels on a 48x48 image:
  // C[64, 2304] = W[64, 576] * col[576, 2304].
  const std::int64_t m = 64, k = 576, n = 2304;
  Rng rng(2);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto& v : a) v = rng.Uniform(-1, 1);
  for (auto& v : b) v = rng.Uniform(-1, 1);
  for (auto _ : state) {
    Gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * m * n * k * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmConvShaped);

void BM_GemmTransposed(benchmark::State& state) {
  // Weight-gradient shape: gW[m,k] = gy[m,n] * col[k,n]^T.
  const std::int64_t m = 64, n = 2304, k = 576;
  Rng rng(3);
  std::vector<float> a(static_cast<std::size_t>(m * n));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * k));
  for (auto& v : a) v = rng.Uniform(-1, 1);
  for (auto& v : b) v = rng.Uniform(-1, 1);
  for (auto _ : state) {
    Gemm(false, true, m, k, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransposed);

// ------------------------------------------ kernel mode comparison -----

using Clock = std::chrono::steady_clock;

struct GemmCase {
  const char* key;  // metric suffix
  bool trans_b;
  std::int64_t m, n, k;
};

// The three shapes the perf trajectory tracks: a square GEMM, the
// forward im2col shape of a 3x3 64->64 conv on 48x48 (the acceptance
// shape), and the transposed right-operand variant of the same.
constexpr GemmCase kCases[] = {
    {"square256", false, 256, 256, 256},
    {"conv", false, 64, 2304, 576},
    {"conv_tb", true, 64, 576, 2304},
};

double TimeGemmMs(const GemmCase& cs, const float* a, const float* b,
                  float* c) {
  const auto start = Clock::now();
  Gemm(false, cs.trans_b, cs.m, cs.n, cs.k, 1.0f, a, b, 0.0f, c);
  benchmark::DoNotOptimize(c);
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Times each shape under the packed microkernel engine and the reference
// blocked walk, reporting GFLOP/s series plus speedup scalars.
void RunKernelComparison() {
  obs::BenchReport report("micro_gemm");
  report.AddScalar("threads",
                   static_cast<double>(ThreadPool::Global().size() + 1));

  constexpr int kRounds = 7;
  std::printf(
      "\nGEMM kernel engine (microkernel: %s, median GFLOP/s of %d):\n"
      "  %10s %16s %14s %9s\n",
      GemmMicroKernelName(), kRounds, "shape", "reference", "packed",
      "speedup");
  const GemmKernelMode saved = GemmKernelModeInUse();
  for (const GemmCase& cs : kCases) {
    Rng rng(7);
    std::vector<float> a(static_cast<std::size_t>(cs.m * cs.k));
    std::vector<float> b(static_cast<std::size_t>(cs.k * cs.n));
    std::vector<float> c(static_cast<std::size_t>(cs.m * cs.n));
    for (auto& v : a) v = rng.Uniform(-1, 1);
    for (auto& v : b) v = rng.Uniform(-1, 1);
    const double gflop = 2.0 * cs.m * cs.n * cs.k / 1e9;

    double medians[2] = {0, 0};
    for (const bool packed : {false, true}) {
      SetGemmKernelMode(packed ? GemmKernelMode::kPacked
                                : GemmKernelMode::kReference);
      (void)TimeGemmMs(cs, a.data(), b.data(), c.data());  // warm-up
      std::vector<double> rates;
      rates.reserve(kRounds);
      for (int r = 0; r < kRounds; ++r) {
        rates.push_back(gflop /
                        (TimeGemmMs(cs, a.data(), b.data(), c.data()) / 1e3));
      }
      const std::string metric = std::string("gflops_") +
                                 (packed ? "packed_" : "reference_") + cs.key;
      report.AddSeries(metric, rates);
      medians[packed ? 1 : 0] = Summarize(rates).median;
    }
    const double speedup = medians[0] > 0 ? medians[1] / medians[0] : 0;
    std::printf("  %10s %16.2f %14.2f %8.2fx\n", cs.key, medians[0],
                medians[1], speedup);
    report.AddScalar(std::string("speedup_packed_") + cs.key, speedup);
  }
  SetGemmKernelMode(saved);
  const auto path = report.WriteJsonFile();
  if (!path.empty()) std::printf("  wrote %s\n", path.string().c_str());
}

}  // namespace
}  // namespace exaclim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  exaclim::RunKernelComparison();
  return 0;
}
