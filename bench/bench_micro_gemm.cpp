// Microbenchmarks of the GEMM kernel that backs im2col convolution —
// the CPU stand-in for the cuDNN implicit-GEMM kernels.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "tensor/gemm.hpp"

namespace exaclim {
namespace {

void BM_GemmSquare(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = rng.Uniform(-1, 1);
  for (auto& v : b) v = rng.Uniform(-1, 1);
  for (auto _ : state) {
    Gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmConvShaped(benchmark::State& state) {
  // The im2col shape of a 3x3 conv, 64->64 channels on a 48x48 image:
  // C[64, 2304] = W[64, 576] * col[576, 2304].
  const std::int64_t m = 64, k = 576, n = 2304;
  Rng rng(2);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto& v : a) v = rng.Uniform(-1, 1);
  for (auto& v : b) v = rng.Uniform(-1, 1);
  for (auto _ : state) {
    Gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * m * n * k * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmConvShaped);

void BM_GemmTransposed(benchmark::State& state) {
  // Weight-gradient shape: gW[m,k] = gy[m,n] * col[k,n]^T.
  const std::int64_t m = 64, n = 2304, k = 576;
  Rng rng(3);
  std::vector<float> a(static_cast<std::size_t>(m * n));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * k));
  for (auto& v : a) v = rng.Uniform(-1, 1);
  for (auto& v : b) v = rng.Uniform(-1, 1);
  for (auto _ : state) {
    Gemm(false, true, m, k, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransposed);

}  // namespace
}  // namespace exaclim
