// Per-phase allocation census of a warmed-up training step (DESIGN §11).
//
// Runs a few warmup steps of a downscaled Tiramisu trainer with the heap
// interposer counting (SetAllocTracking), zeroes the site registry, then
// measures per-step allocation count/bytes for every annotated phase:
// the step itself, its forward/backward/update sub-phases, the conv
// shard dispatch and the GEMM pack paths. Emits BENCH_alloc_census.json;
// the ci.sh `alloc-smoke` stage ratchets the medians against the
// checked-in budget in tools/alloc_budget.json (via
// tools/check_alloc_budget.py) so steady-state allocation counts can
// only go down without an explicit budget edit (ROADMAP item 2).
//
// Determinism: allocation counts depend on the worker count (ParallelFor
// task closures), so the pool size is pinned to 4 before first use, and
// the step runs local-only (no communicator -> no exchange traffic).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/thread_pool.hpp"
#include "data/dataset.hpp"
#include "nn/loss.hpp"
#include "obs/bench_report.hpp"
#include "stats/stats.hpp"
#include "train/trainer.hpp"

namespace exaclim {
namespace {

constexpr int kWarmupSteps = 3;
constexpr int kMeasuredSteps = 5;

// The phases with a checked-in budget. step.exchange is absent: the
// census runs local-only, so the exchange phase never opens.
const char* const kPhases[] = {
    "step",          "step.forward", "step.backward", "step.update",
    "conv.shards",   "gemm.pack.a",  "gemm.pack.b",
};

struct SiteSnapshot {
  std::int64_t count = 0;
  std::int64_t bytes = 0;
};

SiteSnapshot SnapshotSite(const char* name) {
  const AllocSiteId id = FindAllocSite(name);
  if (id < 0) return {};
  const AllocSiteInfo info = GetAllocSite(id);
  return {info.count, info.bytes};
}

}  // namespace

int Main() {
  // Pin the pool before anything touches it: closure/task allocation
  // counts scale with the worker count.
  setenv("EXACLIM_THREADS", "4", /*overwrite=*/1);
  SetAllocTracking(true);

  ClimateDataset::Options d;
  d.num_samples = 24;
  d.generator.height = 48;
  d.generator.width = 48;
  d.channels = {kTMQ, kU850, kV850, kPSL};  // Downscaled(4) takes 4 channels
  const ClimateDataset dataset(d);
  const auto freq = dataset.MeasureFrequencies(8);

  TrainerOptions o;
  o.arch = TrainerOptions::Arch::kTiramisu;
  o.tiramisu = Tiramisu::Config::Downscaled(4);
  o.local_batch = 2;
  RankTrainer trainer(
      o, MakeClassWeights(freq, WeightingScheme::kInverseSqrt), 0);

  Rng rng(99);
  const auto next_batch = [&] {
    std::vector<std::int64_t> idx(2);
    for (auto& i : idx) {
      i = rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1);
    }
    return dataset.MakeBatch(DatasetSplit::kTrain, idx);
  };

  // Warmup: first steps populate caches, scratch pools and lazily-sized
  // vectors (mask_.resize etc.); the ratchet is about the steady state.
  for (int s = 0; s < kWarmupSteps; ++s) (void)trainer.Step(next_batch());
  ResetAllocSiteStats();

  // Measured window: per-step deltas of every budgeted site.
  std::vector<std::vector<double>> counts(std::size(kPhases));
  std::vector<std::vector<double>> bytes(std::size(kPhases));
  std::vector<SiteSnapshot> last(std::size(kPhases));
  for (int s = 0; s < kMeasuredSteps; ++s) {
    (void)trainer.Step(next_batch());
    for (std::size_t p = 0; p < std::size(kPhases); ++p) {
      const SiteSnapshot now = SnapshotSite(kPhases[p]);
      counts[p].push_back(static_cast<double>(now.count - last[p].count));
      bytes[p].push_back(static_cast<double>(now.bytes - last[p].bytes));
      last[p] = now;
    }
  }

  obs::BenchReport report("alloc_census");
  report.AddScalar("threads",
                   static_cast<double>(ThreadPool::Global().size() + 1));
  std::printf(
      "Per-phase allocation census (Tiramisu 1/4-scale, batch 2, pool=4, "
      "%d warmup + %d measured steps; per-step medians)\n",
      kWarmupSteps, kMeasuredSteps);
  std::printf("  %-16s %14s %16s\n", "phase", "allocs/step", "bytes/step");
  for (std::size_t p = 0; p < std::size(kPhases); ++p) {
    report.AddSeries(std::string("alloc_count.") + kPhases[p], counts[p]);
    report.AddSeries(std::string("alloc_bytes.") + kPhases[p], bytes[p]);
    std::printf("  %-16s %14.0f %16.0f\n", kPhases[p],
                Summarize(counts[p]).median, Summarize(bytes[p]).median);
  }

  // Any other sites that saw traffic (unbudgeted; informational only).
  for (AllocSiteId id = 0; id < AllocSiteCount(); ++id) {
    const AllocSiteInfo info = GetAllocSite(id);
    bool budgeted = false;
    for (const char* phase : kPhases) {
      if (std::string(phase) == info.name) budgeted = true;
    }
    if (!budgeted && info.count > 0) {
      std::printf("  (unbudgeted) %-16s %lld allocs over the window\n",
                  info.name, static_cast<long long>(info.count));
    }
  }

  const auto path = report.WriteJsonFile();
  if (!path.empty()) std::printf("\nwrote %s\n", path.string().c_str());
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
