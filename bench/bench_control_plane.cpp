// Reproduces the Sec V-A3 control-plane results:
//  * the stock Horovod coordinator (rank 0) must receive (P-1)*N
//    readiness messages per step — millions of messages per second at
//    27360 ranks with >100 gradient tensors;
//  * the hierarchical radix-r tree bounds every rank's message load to
//    (r+1) per tensor, reducing the controller load to mere thousands;
//  * tuning r between 2 and 8 makes no measurable difference;
//  * the real negotiation protocol runs at thread scale, its measured
//    message counters validating the analytic extrapolation.

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "hvd/control_plane.hpp"
#include "netsim/scale.hpp"
#include "obs/bench_report.hpp"

namespace exaclim {
namespace {

// Measures the controller's received messages for a real negotiation.
std::int64_t MeasureControllerLoad(bool hierarchical, int radix, int ranks,
                                   int tensors) {
  SimWorld world(ranks);
  std::int64_t received = 0;
  world.Run([&](Communicator& comm) {
    auto plane = MakeControlPlane(hierarchical, radix);
    std::vector<int> ready(static_cast<std::size_t>(tensors));
    std::iota(ready.begin(), ready.end(), 0);
    Rng rng(1 + comm.rank());
    std::shuffle(ready.begin(), ready.end(), rng.engine());
    comm.ResetCounters();
    (void)plane->NegotiateOrder(comm, ready);
    if (comm.rank() == 0) received = comm.messages_received();
  });
  return received;
}

}  // namespace

int Main() {
  const int tensors = 120;  // "over a hundred allreduce operations"
  obs::BenchReport report("control_plane");

  std::printf(
      "Sec V-A3 — control plane: measured controller load at thread "
      "scale (real protocol)\n");
  std::printf("  %6s %18s %22s %9s\n", "ranks", "flat ctrl recv",
              "hierarchical(r=4) recv", "model");
  for (const int ranks : {8, 16, 32, 64}) {
    const auto flat = MeasureControllerLoad(false, 4, ranks, tensors);
    const auto hier = MeasureControllerLoad(true, 4, ranks, tensors);
    const auto flat_model = FlatControlLoad(ranks, tensors).controller_recv;
    const auto hier_model =
        HierarchicalControlLoad(ranks, 4, tensors).controller_recv;
    std::printf("  %6d %18lld %22lld %4lld/%-4lld\n", ranks,
                static_cast<long long>(flat),
                static_cast<long long>(hier),
                static_cast<long long>(flat_model),
                static_cast<long long>(hier_model));
    report.AddScalar("flat_recv_" + std::to_string(ranks),
                     static_cast<double>(flat));
    report.AddScalar("hier_recv_" + std::to_string(ranks),
                     static_cast<double>(hier));
  }

  std::printf(
      "\nExtrapolated controller message load per training step (model, "
      "validated above):\n");
  std::printf("  %7s %18s %20s\n", "ranks", "flat [msgs/step]",
              "hierarchical r=4");
  for (const int ranks : {1024, 5300, 27360}) {
    std::printf("  %7d %18lld %20lld\n", ranks,
                static_cast<long long>(
                    FlatControlLoad(ranks, tensors).controller_recv),
                static_cast<long long>(
                    HierarchicalControlLoad(ranks, 4, tensors)
                        .controller_recv));
  }
  std::printf(
      "  At ~1 step/s the flat controller at 27360 ranks services ~%.1fM\n"
      "  messages per second (paper: \"millions\"); the tree services\n"
      "  only hundreds (\"mere thousands\" including its own sends).\n",
      FlatControlLoad(27360, tensors).controller_recv / 1e6);

  // Step-time impact through the scale model.
  ScaleOptions base;
  base.machine = MachineModel::Summit();
  base.spec = PaperDeepLabSpec(16);
  base.precision = Precision::kFP32;
  base.anchor_samples_per_sec = 0.87;
  base.anchor_tf_per_sample = 14.41;
  base.lag = 0;
  std::printf(
      "\nParallel efficiency impact (DeepLabv3+ FP32 on Summit, model):\n");
  std::printf("  %7s %12s %14s\n", "GPUs", "flat ctrl", "hierarchical");
  for (const int gpus : {1024, 4096, 27360}) {
    ScaleOptions flat = base;
    flat.hierarchical_control = false;
    ScaleOptions hier = base;
    std::printf("  %7d %11.1f%% %13.1f%%\n", gpus,
                ScaleSimulator(flat).Simulate(gpus).efficiency * 100.0,
                ScaleSimulator(hier).Simulate(gpus).efficiency * 100.0);
  }

  std::printf("\nRadix sweep at 27360 GPUs (paper: r in [2,8] equivalent):\n");
  for (const int radix : {2, 3, 4, 6, 8}) {
    ScaleOptions o = base;
    o.control_radix = radix;
    const double efficiency =
        ScaleSimulator(o).Simulate(27360).efficiency * 100.0;
    std::printf("  r=%d: efficiency %.2f%%, control %.3f ms/step\n", radix,
                efficiency, ScaleSimulator(o).ControlSeconds(27360) * 1e3);
    report.AddScalar("efficiency_27360_r" + std::to_string(radix),
                     efficiency);
  }
  const auto json_path = report.WriteJsonFile();
  if (!json_path.empty()) {
    std::printf("\nwrote %s\n", json_path.string().c_str());
  }
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
