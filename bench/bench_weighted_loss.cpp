// Reproduces the Sec V-B1 weighted-loss results with real training runs:
//  * unweighted loss: the network collapses to the all-background
//    predictor (~98% pixel accuracy, zero minority-class IoU);
//  * inverse-frequency weights: degraded FP16 training quality, and at
//    the paper's exact class imbalance (TC weight ~1000) the per-pixel
//    weighted losses on confidently-wrong TC pixels overflow binary16
//    (demonstrated directly at the end of the output);
//  * inverse-sqrt-frequency weights (the paper's fix): stable in FP16
//    and the network learns the minority classes.

#include <array>
#include <cmath>
#include <cstdio>
#include <vector>

#include "train/trainer.hpp"

namespace exaclim {
namespace {

struct Outcome {
  double final_accuracy;
  double mean_iou;
  double ar_iou;
  double tc_iou;
  std::int64_t skipped;
  std::int64_t overflow_losses;
};

Outcome Run(const ClimateDataset& dataset, WeightingScheme scheme,
            Precision precision, int steps) {
  TrainerOptions o;
  o.arch = TrainerOptions::Arch::kTiramisu;
  o.tiramisu = Tiramisu::Config::Downscaled(4);
  o.learning_rate = 2e-3f;
  o.local_batch = 2;
  o.precision = precision;
  o.weighting = scheme;
  o.loss_scaler.initial_scale = 1024.0f;

  const auto freq = dataset.MeasureFrequencies(16);
  RankTrainer trainer(o, MakeClassWeights(freq, scheme), 0);

  // Track FP16 per-pixel loss overflow directly through the loss
  // function as well.
  std::int64_t overflow = 0, skipped = 0;
  double accuracy = 0.0;
  Rng rng(321);
  for (int s = 0; s < steps; ++s) {
    std::vector<std::int64_t> idx(2);
    for (auto& i : idx) {
      i = rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1);
    }
    const Batch batch = dataset.MakeBatch(DatasetSplit::kTrain, idx);
    if (precision == Precision::kFP16) {
      SegmentationLossOptions lo;
      const auto lo_weights = MakeClassWeights(freq, scheme);
      lo.class_weights = lo_weights;
      lo.precision = Precision::kFP16;
      const Tensor logits = trainer.model().Forward(batch.fields, false);
      overflow +=
          WeightedSoftmaxCrossEntropy(logits, batch.labels, lo)
              .nonfinite_loss_count;
    }
    const auto r = trainer.Step(batch);
    accuracy = r.pixel_accuracy;
    if (!r.update_applied) ++skipped;
  }
  const auto cm = trainer.Evaluate(dataset, DatasetSplit::kValidation, 6);
  return {accuracy, cm.MeanIoU(), cm.IoU(kAtmosphericRiver),
          cm.IoU(kTropicalCyclone), skipped, overflow};
}

}  // namespace

int Main() {
  ClimateDataset::Options d;
  d.num_samples = 60;
  d.generator.height = 48;
  d.generator.width = 64;
  // Eventful configuration so the rare TC class actually appears in the
  // training batches (on the paper's 1152x768 grid every snapshot holds
  // multiple events; a 48x64 crop needs a higher event rate for that).
  d.generator.mean_cyclones = 2.5;
  d.generator.mean_rivers = 2.0;
  d.channels = {kTMQ, kU850, kV850, kPSL};
  const ClimateDataset dataset(d);
  const auto freq = dataset.MeasureFrequencies(16);
  std::printf(
      "Sec V-B1 — loss weighting (measured class frequencies: BG %.3f, "
      "AR %.3f, TC %.4f;\n paper: 0.982 / 0.017 / <0.001)\n\n",
      freq[0], freq[1], freq[2]);

  const int steps = 120;
  std::printf("%-26s %5s | %9s %8s %8s %8s %8s %9s\n", "weighting", "prec",
              "final acc", "mIoU", "IoU(AR)", "IoU(TC)", "skipped",
              "fp16 ovfl");

  struct Case {
    WeightingScheme scheme;
    Precision precision;
  };
  for (const Case c : {Case{WeightingScheme::kNone, Precision::kFP32},
                       Case{WeightingScheme::kInverseSqrt, Precision::kFP32},
                       Case{WeightingScheme::kInverse, Precision::kFP16},
                       Case{WeightingScheme::kInverseSqrt,
                            Precision::kFP16}}) {
    const Outcome r = Run(dataset, c.scheme, c.precision, steps);
    std::printf("%-26s %5s | %8.1f%% %7.1f%% %7.1f%% %7.1f%% %8lld %9lld\n",
                ToString(c.scheme), ToString(c.precision),
                r.final_accuracy * 100, r.mean_iou * 100, r.ar_iou * 100,
                r.tc_iou * 100, static_cast<long long>(r.skipped),
                static_cast<long long>(r.overflow_losses));
  }

  std::printf(
      "\nPaper findings to match: unweighted collapses toward the "
      "background\npredictor on the rare class; inverse weights degrade "
      "FP16 training;\ninverse-sqrt trains stably in FP16 and learns "
      "AR/TC.\n");

  // Direct overflow demonstration at the paper's exact class imbalance
  // (0.982/0.017/0.001 -> inverse TC weight 1000): per-pixel weighted
  // losses on confidently-wrong TC pixels exceed the binary16 maximum
  // (65504), while inverse-sqrt weights stay 2 orders of magnitude below.
  {
    const std::array<double, 3> paper_freq{0.982, 0.017, 0.001};
    const std::int64_t pixels = 256;
    Tensor logits = Tensor::Zeros(TensorShape::NCHW(1, 3, 1, pixels));
    std::vector<std::uint8_t> labels(static_cast<std::size_t>(pixels), 0);
    for (std::int64_t p = 0; p < 8; ++p) {
      labels[static_cast<std::size_t>(p)] = kTropicalCyclone;
      logits[static_cast<std::size_t>(p)] = 40.0f;               // BG sure
      logits[static_cast<std::size_t>(2 * pixels + p)] = -40.0f;  // TC no
    }
    for (const auto scheme :
         {WeightingScheme::kInverse, WeightingScheme::kInverseSqrt}) {
      SegmentationLossOptions lo;
      lo.precision = Precision::kFP16;
      const auto lo_weights = MakeClassWeights(paper_freq, scheme);
      lo.class_weights = lo_weights;
      const auto r = WeightedSoftmaxCrossEntropy(logits, labels, lo);
      std::printf(
          "  paper imbalance, %-26s: %lld of 8 confidently-wrong TC "
          "pixels overflow binary16 (max per-pixel loss ~%.0f)\n",
          ToString(scheme), static_cast<long long>(r.nonfinite_loss_count),
          lo.class_weights[2] * 80.0);
    }
  }
  std::printf(
      "Weight magnitudes: inverse TC weight = %.0f, inverse-sqrt = %.1f "
      "(a %.0fx dynamic-range reduction).\n",
      1.0 / freq[2], 1.0 / std::sqrt(freq[2]),
      (1.0 / freq[2]) / (1.0 / std::sqrt(freq[2])));
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
