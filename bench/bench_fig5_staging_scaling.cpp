// Reproduces Fig 5: dependence of Piz Daint weak scaling on input data
// location — node-local tmpfs staging vs reading straight from the
// shared Lustre filesystem (112 GB/s effective), which saturates near
// 2048 GPUs where the network demands ~110 GB/s of input.

#include <cstdio>
#include <vector>

#include "netsim/scale.hpp"

namespace exaclim {

int Main() {
  ScaleOptions base;
  base.machine = MachineModel::PizDaint();
  Tiramisu::Config cfg = Tiramisu::Config::Modified();
  cfg.in_channels = 4;
  base.spec = BuildTiramisuSpec(cfg, 768, 1152);
  base.precision = Precision::kFP32;
  base.local_batch = 1;
  base.hybrid_allreduce = false;
  base.anchor_samples_per_sec = 1.20;
  base.anchor_tf_per_sample = 3.703;

  ScaleOptions local = base;
  ScaleOptions global = base;
  global.staged_input = false;
  ScaleSimulator local_sim(local);
  ScaleSimulator global_sim(global);

  std::printf(
      "Fig 5 — Piz Daint weak scaling vs input location (P100, FP32)\n");
  std::printf("  %6s %16s %17s %9s %11s\n", "GPUs", "local im/s",
              "global-fs im/s", "penalty", "fs demand");
  for (const int g :
       std::vector<int>{64, 128, 256, 512, 768, 1024, 1536, 2048}) {
    const ScalePoint l = local_sim.Simulate(g);
    const ScalePoint gl = global_sim.Simulate(g);
    const double demand_gb =
        g * 1.0 * 16 * 768 * 1152 * 4.0 / l.step_seconds / 1e9;
    std::printf("  %6d %16.1f %17.1f %8.1f%% %8.1f GB/s\n", g,
                l.images_per_sec, gl.images_per_sec,
                (1.0 - gl.images_per_sec / l.images_per_sec) * 100.0,
                demand_gb);
  }
  const double eff_local = local_sim.Simulate(2048).efficiency;
  const double eff_global = global_sim.Simulate(2048).efficiency;
  std::printf(
      "\nAt 2048 GPUs: staged %.1f%% vs global-fs %.1f%% parallel "
      "efficiency (paper: 83.4%% vs 75.8%%, a 9.5%% penalty).\n"
      "The network demands ~%.0f GB/s against the filesystem's 112 GB/s\n"
      "limit (paper: \"nearly 110 GB/s\"), so the paper did not scale\n"
      "global-fs runs past 2048 GPUs — nor does this model.\n",
      eff_local * 100.0, eff_global * 100.0,
      2048 * 1.2 * 16 * 768 * 1152 * 4.0 * eff_local / 1e9);
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
