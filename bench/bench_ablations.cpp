// Ablation benches for the design choices DESIGN.md calls out:
//  1. Sec V-B5 Tiramisu redesign — growth 16 / 3x3 / deep blocks vs the
//     paper's growth 32 / 5x5 / halved blocks: FLOP counts, roofline
//     compute intensity, measured CPU step time of downscaled versions,
//     and real convergence quality at equal step budget.
//  2. Sec V-B5 DeepLabv3+ decoder — full-resolution deconv decoder vs the
//     standard quarter-resolution head: cost and mask quality.
//  3. Sec V-B2 LARC — stability at aggressive learning rates.
//  4. Sec V-B4 gradient lag — throughput at scale and convergence parity.
//  5. Horovod tensor fusion — buffer count vs fusion threshold, plus the
//     event-driven overlap simulation of step time vs bucket size.
//  6. Sec V-B3 multi-channel input — 4 channels (Piz Daint mode) vs all
//     16 (Summit mode), real training.
//  7. Sec V-B2 LARC vs LARS — clip mode removes the warm-up requirement.

#include <chrono>
#include <cstdio>
#include <vector>

#include "netsim/event_engine.hpp"
#include "netsim/scale.hpp"
#include "stats/stats.hpp"
#include "train/trainer.hpp"

namespace exaclim {
namespace {

using Clock = std::chrono::steady_clock;

double FinalSmoothedLoss(const TrainRunResult& r) {
  return MovingAverage(r.loss_history, 8).back();
}

}  // namespace

int Main() {
  ClimateDataset::Options d;
  d.num_samples = 50;
  d.generator.height = 32;
  d.generator.width = 32;
  d.channels = {kTMQ, kU850, kV850, kPSL};
  const ClimateDataset dataset(d);

  // ---------------------------------------------------- 1. Tiramisu ----
  std::printf("Ablation 1 — Sec V-B5 Tiramisu redesign (growth 32 / 5x5)\n");
  {
    const ArchSpec original =
        BuildTiramisuSpec(Tiramisu::Config::Original(), 768, 1152);
    const ArchSpec modified = PaperTiramisuSpec(16);
    const auto c_orig = AnalyzeTraining(original, Precision::kFP16, 2);
    const auto c_mod = AnalyzeTraining(modified, Precision::kFP16, 2);
    std::printf(
        "  original (g=16, 3x3, deep):   %.3f TF/sample, intensity %.1f "
        "FLOP/B, %lld convs\n",
        c_orig.ConvFlopsPerSample() / 1e12,
        c_orig.TotalFlops() / c_orig.TotalBytes(),
        static_cast<long long>(original.CountOps(OpSpec::Kind::kConv)));
    std::printf(
        "  modified (g=32, 5x5, halved): %.3f TF/sample, intensity %.1f "
        "FLOP/B, %lld convs\n",
        c_mod.ConvFlopsPerSample() / 1e12,
        c_mod.TotalFlops() / c_mod.TotalBytes(),
        static_cast<long long>(modified.CountOps(OpSpec::Kind::kConv)));
    std::printf(
        "  -> the redesign raises arithmetic intensity %.1fx (the paper's "
        "rationale: growth-16 convs were memory-limited)\n",
        (c_mod.TotalFlops() / c_mod.TotalBytes()) /
            (c_orig.TotalFlops() / c_orig.TotalBytes()));

    // Roofline samples/s on V100 FP16 (where the original suffers most).
    const auto perf_orig = AnalyzeSingleGpu(original, MachineModel::Summit(),
                                            Precision::kFP16, 2);
    const auto perf_mod = AnalyzeSingleGpu(modified, MachineModel::Summit(),
                                           Precision::kFP16, 2);
    std::printf(
        "  roofline FP16 efficiency: original %.1f%% of peak, modified "
        "%.1f%% of peak\n",
        perf_orig.fraction_of_peak * 100, perf_mod.fraction_of_peak * 100);
  }
  {
    // Real convergence at equal step budget (paper: the new network
    // "trained faster and yielded a better model").
    auto run = [&](Tiramisu::Config cfg, const char* tag) {
      TrainerOptions o;
      o.arch = TrainerOptions::Arch::kTiramisu;
      cfg.in_channels = 4;
      o.tiramisu = cfg;
      o.learning_rate = 2e-3f;
      o.exchanger.transport = ReduceTransport::kMpiRing;
      const auto start = Clock::now();
      const auto result = RunDistributedTraining(o, dataset, 1, 40, 16);
      const double secs =
          std::chrono::duration<double>(Clock::now() - start).count();
      std::printf("  real downscaled run (%s): final loss %.4f, %.2f "
                  "s/step on this CPU\n",
                  tag, FinalSmoothedLoss(result), secs / 40);
    };
    Tiramisu::Config orig = Tiramisu::Config::Downscaled(4);
    orig.growth_rate = 2;
    orig.kernel = 3;
    orig.down_layers = {2, 2};
    orig.bottleneck_layers = 2;
    Tiramisu::Config mod = Tiramisu::Config::Downscaled(4);
    mod.growth_rate = 4;
    mod.kernel = 5;
    mod.down_layers = {1, 1};
    mod.bottleneck_layers = 1;
    run(orig, "orig-style");
    run(mod, "modified-style");
  }

  // ------------------------------------------------------ 2. Decoder ---
  std::printf("\nAblation 2 — DeepLabv3+ decoder resolution (Sec V-B5)\n");
  {
    auto full_cfg = DeepLabV3Plus::Config::Paper(16);
    auto quarter_cfg = full_cfg;
    quarter_cfg.full_res_decoder = false;
    const auto full =
        AnalyzeTraining(BuildDeepLabSpec(full_cfg, 768, 1152),
                        Precision::kFP32, 1);
    const auto quarter =
        AnalyzeTraining(BuildDeepLabSpec(quarter_cfg, 768, 1152),
                        Precision::kFP32, 1);
    std::printf(
        "  full-res decoder:    %.3f TF/sample\n  quarter-res decoder: "
        "%.3f TF/sample (the standard compromise)\n  -> full resolution "
        "costs %.1f%% more compute, affordable on Summit\n",
        full.ConvFlopsPerSample() / 1e12,
        quarter.ConvFlopsPerSample() / 1e12,
        (full.ConvFlopsPerSample() / quarter.ConvFlopsPerSample() - 1) *
            100);
  }
  {
    // Eventful 48x48 data so the minority classes are learnable within
    // the step budget.
    ClimateDataset::Options dd = d;
    dd.generator.height = 48;
    dd.generator.width = 48;
    dd.generator.mean_cyclones = 2.0;
    dd.generator.mean_rivers = 1.8;
    const ClimateDataset decoder_data(dd);
    auto run = [&](bool full_res) {
      TrainerOptions o;
      o.arch = TrainerOptions::Arch::kDeepLab;
      o.deeplab = DeepLabV3Plus::Config::Downscaled(4);
      o.deeplab.full_res_decoder = full_res;
      o.learning_rate = 3e-3f;
      o.local_batch = 2;
      const auto freq = decoder_data.MeasureFrequencies(16);
      RankTrainer trainer(
          o, MakeClassWeights(freq, WeightingScheme::kInverseSqrt), 0);
      Rng rng(55);
      for (int s = 0; s < 400; ++s) {
        std::vector<std::int64_t> idx(2);
        for (auto& i : idx) {
          i = rng.Int(0, decoder_data.size(DatasetSplit::kTrain) - 1);
        }
        (void)trainer.Step(
            decoder_data.MakeBatch(DatasetSplit::kTrain, idx));
      }
      return trainer.Evaluate(decoder_data, DatasetSplit::kValidation, 5);
    };
    const auto full_cm = run(true);
    const auto quarter_cm = run(false);
    std::printf(
        "  real downscaled training: full-res mIoU %.1f%%, quarter-res "
        "mIoU %.1f%% (paper: full res needed for irregular fine-scale "
        "masks)\n",
        full_cm.MeanIoU() * 100, quarter_cm.MeanIoU() * 100);
  }

  // --------------------------------------------------------- 3. LARC ---
  std::printf("\nAblation 3 — LARC at aggressive learning rates (Sec V-B2)\n");
  for (const bool use_larc : {false, true}) {
    TrainerOptions o;
    o.arch = TrainerOptions::Arch::kTiramisu;
    o.tiramisu = Tiramisu::Config::Downscaled(4);
    o.optimizer = TrainerOptions::Opt::kSGD;
    o.learning_rate = 0.5f;  // deliberately large-batch-style LR
    o.use_larc = use_larc;
    o.larc.trust_coefficient = 5e-3f;
    o.exchanger.transport = ReduceTransport::kMpiRing;
    const auto result = RunDistributedTraining(o, dataset, 1, 30, 16);
    bool finite = true;
    for (const double l : result.loss_history) {
      finite = finite && std::isfinite(l);
    }
    std::printf("  lr=0.5 %-9s: final loss %s, all steps finite: %s\n",
                use_larc ? "with LARC" : "plain SGD",
                finite ? std::to_string(FinalSmoothedLoss(result)).c_str()
                       : "diverged",
                finite ? "yes" : "NO");
  }

  // ---------------------------------------------------------- 4. Lag ---
  std::printf("\nAblation 4 — gradient lag (Sec V-B4)\n");
  {
    ScaleOptions o;
    o.machine = MachineModel::Summit();
    o.spec = PaperDeepLabSpec(16);
    o.precision = Precision::kFP16;
    o.local_batch = 2;
    o.anchor_samples_per_sec = 2.67;
    o.anchor_tf_per_sample = 14.41;
    for (const int lag : {0, 1}) {
      o.lag = lag;
      const auto p = ScaleSimulator(o).Simulate(27360);
      std::printf(
          "  lag %d at 27360 GPUs: %.0f images/s, %.1f PF/s, exposed comm "
          "%.1f ms/step\n",
          lag, p.images_per_sec, p.pflops_sustained,
          p.exposed_comm_seconds * 1e3);
    }
    for (const int lag : {0, 1}) {
      TrainerOptions t;
      t.arch = TrainerOptions::Arch::kTiramisu;
      t.tiramisu = Tiramisu::Config::Downscaled(4);
      t.learning_rate = 2e-3f;
      t.lag = lag;
      t.exchanger.transport = ReduceTransport::kMpiRing;
      const auto result = RunDistributedTraining(t, dataset, 2, 30, 16);
      std::printf("  real convergence, lag %d: final loss %.4f\n", lag,
                  FinalSmoothedLoss(result));
    }
    std::printf(
        "  (paper: lag 1 gives the best throughput; lag 0 and lag 1 loss "
        "curves nearly identical)\n");
  }

  // ------------------------------------------------------- 5. Fusion ---
  std::printf("\nAblation 5 — Horovod tensor fusion\n");
  {
    SimWorld world(2);
    for (const std::int64_t threshold :
         std::vector<std::int64_t>{1, 64 << 10, 4 << 20}) {
      std::int64_t buffers = 0;
      world.Run([&](Communicator& comm) {
        Rng rng(9);
        Tiramisu model(Tiramisu::Config::Downscaled(4), rng);
        auto params = model.Params();
        for (Param* p : params) p->grad.Fill(0.5f);
        ExchangerOptions eo;
        eo.transport = ReduceTransport::kMpiRing;
        eo.fusion_threshold_bytes = threshold;
        GradientExchanger exchanger(eo, 4);
        exchanger.Exchange(comm, params);
        if (comm.rank() == 0) {
          buffers = exchanger.last_fused_buffers();
        }
      });
      std::printf(
          "  threshold %8lld B: %3lld all-reduce launches for %zu "
          "tensors\n",
          static_cast<long long>(threshold),
          static_cast<long long>(buffers),
          [] {
            Rng rng(9);
            Tiramisu m(Tiramisu::Config::Downscaled(4), rng);
            return m.Params().size();
          }());
    }
    std::printf(
        "  (fusion batches small gradients into few launches — the effect "
        "gradient lag amplifies at scale)\n");
  }
  {
    // Event-driven overlap: step time vs fusion bucket size for the
    // full-size DeepLab gradient on Summit's fabric.
    std::printf("  event-driven overlap simulation (DeepLabv3+ FP32, "
                "Summit inter-node path):\n");
    const ArchSpec spec = PaperDeepLabSpec(16);
    for (const std::int64_t fusion :
         std::vector<std::int64_t>{256 << 10, 4 << 20, 64 << 20}) {
      for (const int lag : {0, 1}) {
        const auto config = BuildOverlapConfig(
            spec, MachineModel::Summit(), Precision::kFP32, 1.149, fusion,
            lag);
        const auto r = SimulateOverlap(config);
        std::printf(
            "    fusion %5.1f MB, lag %d: %zu buckets, step %.1f ms, "
            "exposed comm %.2f ms\n",
            fusion / 1048576.0, lag, config.bucket_bytes.size(),
            r.steady_step_seconds * 1e3, r.exposed_comm_seconds * 1e3);
      }
    }
  }

  // ----------------------------------------------------- 6. Channels ---
  std::printf("\nAblation 6 — input channels (Sec V-B3: 4 on Piz Daint vs "
              "all 16 on Summit)\n");
  {
    ClimateDataset::Options dd = d;
    dd.generator.height = 48;
    dd.generator.width = 48;
    dd.generator.mean_cyclones = 2.0;
    dd.generator.mean_rivers = 1.8;
    struct ChannelCase {
      const char* label;
      std::vector<int> channels;  // empty = all 16
    };
    for (const ChannelCase& cc :
         {ChannelCase{"4 (TMQ,U850,V850,PSL)",
                      {kTMQ, kU850, kV850, kPSL}},
          ChannelCase{"4 (UBOT,VBOT,PRECT,T500)",
                      {kUBOT, kVBOT, kPRECT, kT500}},
          ChannelCase{"16 (all)", {}}}) {
      ClimateDataset::Options cd = dd;
      cd.channels = cc.channels;
      const ClimateDataset channel_data(cd);
      TrainerOptions o;
      o.arch = TrainerOptions::Arch::kTiramisu;
      o.tiramisu = Tiramisu::Config::Downscaled(
          channel_data.num_channels());
      o.learning_rate = 2e-3f;
      o.local_batch = 2;
      const auto freq = channel_data.MeasureFrequencies(16);
      RankTrainer trainer(
          o, MakeClassWeights(freq, WeightingScheme::kInverseSqrt), 0);
      Rng rng(88);
      for (int s = 0; s < 180; ++s) {
        std::vector<std::int64_t> idx(2);
        for (auto& i : idx) {
          i = rng.Int(0, channel_data.size(DatasetSplit::kTrain) - 1);
        }
        (void)trainer.Step(
            channel_data.MakeBatch(DatasetSplit::kTrain, idx));
      }
      const auto cm =
          trainer.Evaluate(channel_data, DatasetSplit::kValidation, 6);
      std::printf("  %-26s mean IoU %.1f%% (AR %.1f%%, TC %.1f%%)\n",
                  cc.label, cm.MeanIoU() * 100, cm.IoU(1) * 100,
                  cm.IoU(2) * 100);
    }
    std::printf(
        "  (paper: moving from 4 to 16 channels \"improved the accuracy "
        "of the models dramatically\"; the gap depends on whether the\n"
        "   4-channel guess happens to span the label-relevant fields — "
        "with all 16 there is nothing to guess)\n");
  }

  // -------------------------------------------------- 7. LARC vs LARS --
  std::printf("\nAblation 7 — LARC (clip) vs LARS (no clip) without "
              "warm-up (Sec V-B2)\n");
  for (const bool clip : {true, false}) {
    TrainerOptions o;
    o.arch = TrainerOptions::Arch::kTiramisu;
    o.tiramisu = Tiramisu::Config::Downscaled(4);
    o.optimizer = TrainerOptions::Opt::kSGD;
    o.learning_rate = 0.3f;  // no warm-up, straight to a large rate
    o.use_larc = true;
    o.larc.trust_coefficient = 5e-3f;
    o.larc.clip = clip;
    o.exchanger.transport = ReduceTransport::kMpiRing;
    const auto result = RunDistributedTraining(o, dataset, 1, 30, 16);
    double worst = 0.0;
    for (const double l : result.loss_history) {
      worst = std::max(worst, std::isfinite(l) ? l : 1e30);
    }
    std::printf("  %-18s final loss %.4f, worst step loss %.4f\n",
                clip ? "LARC (clipped)" : "LARS (unclipped)",
                FinalSmoothedLoss(result), worst);
  }
  std::printf("  (LARC's clip bounds the local rate by the scheduled rate, "
              "so no warm-up schedule is needed)\n");
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
