// Reproduces Fig 2: single-GPU operation counts and training rates for
// the Tiramisu and DeepLabv3+ networks on V100 (Summit) and P100
// (Piz Daint), FP32 and FP16.
//
// The absolute operation counts depend on architecture details the paper
// does not fully specify; this bench prints our reconstruction's counts
// and roofline-derived rates next to the paper's measured values. The
// structural results — DeepLab/Tiramisu cost ratio, FP32 achieving a much
// higher fraction of peak than FP16, FP16 still faster in samples/s —
// reproduce (see EXPERIMENTS.md).

#include <cstdio>

#include "netsim/roofline.hpp"

namespace exaclim {
namespace {

struct PaperRow {
  double tf_per_sample;
  double rate;
  double tf_per_sec;
  int peak_pct;
};

void PrintRow(const char* network, const char* gpu, const char* precision,
              const SingleGpuPerformance& ours, const PaperRow& paper) {
  std::printf(
      "%-11s %-5s %-4s | %8.3f %7.2f %8.2f %5.1f%% | %8.3f %7.2f %8.2f "
      "%4d%%\n",
      network, gpu, precision, ours.tf_per_sample, ours.samples_per_sec,
      ours.tf_per_sec, ours.fraction_of_peak * 100,
      paper.tf_per_sample, paper.rate, paper.tf_per_sec, paper.peak_pct);
}

}  // namespace

int Main() {
  const MachineModel summit = MachineModel::Summit();
  const MachineModel piz_daint = MachineModel::PizDaint();

  const ArchSpec tiramisu16 = PaperTiramisuSpec(16);
  Tiramisu::Config t4 = Tiramisu::Config::Modified();
  t4.in_channels = 4;
  const ArchSpec tiramisu4 = BuildTiramisuSpec(t4, 768, 1152);
  const ArchSpec deeplab = PaperDeepLabSpec(16);

  std::printf("Fig 2 — single-GPU performance (this repo | paper)\n");
  std::printf(
      "network     gpu   prec |  TF/smp  smp/s     TF/s  %%peak |  TF/smp"
      "  smp/s     TF/s %%peak\n");
  std::printf(
      "-----------------------+---------------------------------+--------"
      "----------------------\n");

  PrintRow("DeepLabv3+", "V100", "FP16",
           AnalyzeSingleGpu(deeplab, summit, Precision::kFP16, 2),
           {14.41, 2.67, 38.45, 31});
  PrintRow("DeepLabv3+", "V100", "FP32",
           AnalyzeSingleGpu(deeplab, summit, Precision::kFP32, 1),
           {14.41, 0.87, 12.53, 80});
  PrintRow("Tiramisu", "V100", "FP16",
           AnalyzeSingleGpu(tiramisu16, summit, Precision::kFP16, 2),
           {4.188, 5.00, 20.93, 17});
  PrintRow("Tiramisu", "V100", "FP32",
           AnalyzeSingleGpu(tiramisu16, summit, Precision::kFP32, 1),
           {4.188, 1.91, 8.00, 51});
  PrintRow("Tiramisu*", "P100", "FP32",
           AnalyzeSingleGpu(tiramisu4, piz_daint, Precision::kFP32, 1),
           {3.703, 1.20, 4.44, 48});
  std::printf(
      "(* 4 of 16 input channels, as in the paper's Piz Daint runs)\n\n");

  const double ratio_ours =
      AnalyzeTraining(deeplab, Precision::kFP32, 1).ConvFlopsPerSample() /
      AnalyzeTraining(tiramisu16, Precision::kFP32, 1).ConvFlopsPerSample();
  std::printf("DeepLab/Tiramisu op-count ratio: ours %.2fx, paper %.2fx\n",
              ratio_ours, 14.41 / 4.188);
  std::printf("Parameter counts: Tiramisu %.2fM, DeepLabv3+ %.2fM\n",
              tiramisu16.TotalParams() / 1e6, deeplab.TotalParams() / 1e6);
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
