// Reproduces Fig 2: single-GPU operation counts and training rates for
// the Tiramisu and DeepLabv3+ networks on V100 (Summit) and P100
// (Piz Daint), FP32 and FP16.
//
// The absolute operation counts depend on architecture details the paper
// does not fully specify; this bench prints our reconstruction's counts
// and roofline-derived rates next to the paper's measured values. The
// structural results — DeepLab/Tiramisu cost ratio, FP32 achieving a much
// higher fraction of peak than FP16, FP16 still faster in samples/s —
// reproduce (see EXPERIMENTS.md).

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/thread_pool.hpp"
#include "netsim/roofline.hpp"
#include "nn/conv.hpp"
#include "obs/bench_report.hpp"
#include "stats/stats.hpp"

namespace exaclim {
namespace {

struct PaperRow {
  double tf_per_sample;
  double rate;
  double tf_per_sec;
  int peak_pct;
};

// Measured (not roofline-modelled) samples/s of one Tiramisu
// growth-rate-32 conv layer on a 1/8-scale tile (96×144 of 768×1152),
// forward+backward, in both conv-engine modes. This grounds the analytic
// table above in what the substrate actually sustains and records the
// engine's perf trajectory in BENCH_fig2_single_gpu.json.
void MeasureSubstrate() {
  obs::BenchReport report("fig2_single_gpu");
  report.AddScalar("threads",
                   static_cast<double>(ThreadPool::Global().size() + 1));

  constexpr std::int64_t kBatch = 4;
  constexpr int kRounds = 3;
  Rng rng(12);
  Conv2d conv("t", {.in_c = 32, .out_c = 32}, rng);
  Rng xrng(13);
  const Tensor x = Tensor::Uniform(TensorShape::NCHW(kBatch, 32, 96, 144),
                                   xrng, -1, 1);
  Rng grng(14);
  const Tensor g = Tensor::Uniform(conv.OutputShape(x.shape()), grng, -1, 1);

  std::printf(
      "Measured substrate (Tiramisu growth-32 3x3 conv, 1/8-scale tile, "
      "batch %lld, fwd+bwd):\n",
      static_cast<long long>(kBatch));
  using Clock = std::chrono::steady_clock;
  for (const bool parallel : {false, true}) {
    SetConvBatchParallel(parallel);
    std::vector<double> rates;
    rates.reserve(kRounds);
    for (int r = 0; r <= kRounds; ++r) {
      for (Param* p : conv.Params()) p->grad.SetZero();
      const auto start = Clock::now();
      (void)conv.Forward(x, true);
      (void)conv.Backward(g);
      const double s =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (r > 0) rates.push_back(static_cast<double>(kBatch) / s);  // r=0 warms up
    }
    const char* mode = parallel ? "batch-parallel" : "serial";
    report.AddSeries(std::string("conv_tile_smp_per_s_") +
                         (parallel ? "parallel" : "serial"),
                     rates);
    std::printf("  %-15s %8.2f smp/s\n", mode, Summarize(rates).median);
  }
  SetConvBatchParallel(true);
  report.WriteJsonFile();
  std::printf("\n");
}

void PrintRow(const char* network, const char* gpu, const char* precision,
              const SingleGpuPerformance& ours, const PaperRow& paper) {
  std::printf(
      "%-11s %-5s %-4s | %8.3f %7.2f %8.2f %5.1f%% | %8.3f %7.2f %8.2f "
      "%4d%%\n",
      network, gpu, precision, ours.tf_per_sample, ours.samples_per_sec,
      ours.tf_per_sec, ours.fraction_of_peak * 100,
      paper.tf_per_sample, paper.rate, paper.tf_per_sec, paper.peak_pct);
}

}  // namespace

int Main() {
  const MachineModel summit = MachineModel::Summit();
  const MachineModel piz_daint = MachineModel::PizDaint();

  const ArchSpec tiramisu16 = PaperTiramisuSpec(16);
  Tiramisu::Config t4 = Tiramisu::Config::Modified();
  t4.in_channels = 4;
  const ArchSpec tiramisu4 = BuildTiramisuSpec(t4, 768, 1152);
  const ArchSpec deeplab = PaperDeepLabSpec(16);

  std::printf("Fig 2 — single-GPU performance (this repo | paper)\n");
  std::printf(
      "network     gpu   prec |  TF/smp  smp/s     TF/s  %%peak |  TF/smp"
      "  smp/s     TF/s %%peak\n");
  std::printf(
      "-----------------------+---------------------------------+--------"
      "----------------------\n");

  PrintRow("DeepLabv3+", "V100", "FP16",
           AnalyzeSingleGpu(deeplab, summit, Precision::kFP16, 2),
           {14.41, 2.67, 38.45, 31});
  PrintRow("DeepLabv3+", "V100", "FP32",
           AnalyzeSingleGpu(deeplab, summit, Precision::kFP32, 1),
           {14.41, 0.87, 12.53, 80});
  PrintRow("Tiramisu", "V100", "FP16",
           AnalyzeSingleGpu(tiramisu16, summit, Precision::kFP16, 2),
           {4.188, 5.00, 20.93, 17});
  PrintRow("Tiramisu", "V100", "FP32",
           AnalyzeSingleGpu(tiramisu16, summit, Precision::kFP32, 1),
           {4.188, 1.91, 8.00, 51});
  PrintRow("Tiramisu*", "P100", "FP32",
           AnalyzeSingleGpu(tiramisu4, piz_daint, Precision::kFP32, 1),
           {3.703, 1.20, 4.44, 48});
  std::printf(
      "(* 4 of 16 input channels, as in the paper's Piz Daint runs)\n\n");

  const double ratio_ours =
      AnalyzeTraining(deeplab, Precision::kFP32, 1).ConvFlopsPerSample() /
      AnalyzeTraining(tiramisu16, Precision::kFP32, 1).ConvFlopsPerSample();
  std::printf("DeepLab/Tiramisu op-count ratio: ours %.2fx, paper %.2fx\n",
              ratio_ours, 14.41 / 4.188);
  std::printf("Parameter counts: Tiramisu %.2fM, DeepLabv3+ %.2fM\n\n",
              tiramisu16.TotalParams() / 1e6, deeplab.TotalParams() / 1e6);
  MeasureSubstrate();
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
