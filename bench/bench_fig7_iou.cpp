// Reproduces Fig 7 / Sec VII-D: segmentation quality. Trains downscaled
// Tiramisu and modified-DeepLabv3+ networks to (partial) convergence on
// the synthetic climate data and reports per-class and mean IoU on the
// validation split, plus an ASCII rendering of predicted vs heuristic
// masks for one validation sample.
//
// Paper results: Tiramisu 59% IoU, modified DeepLabv3+ 73% IoU; the TC
// class tends to overprediction because a TC false negative costs ~37x
// a false positive under the weighted loss.
//
// Reproduction note (also in EXPERIMENTS.md): both networks land in the
// paper's IoU band (~60-80% mean IoU, far above the 33% all-background
// collapse), but the paper's ORDERING (DeepLab > Tiramisu) does not
// reproduce at this CPU downscale — on 48x48 synthetic fields the
// heuristic labels are nearly local functions of the inputs, so the
// shallow full-resolution Tiramisu fits them more easily than the
// output-stride-8 encoder-decoder, whose context-aggregation advantage
// only pays off at the full 1152x768 resolution of the real data.

#include <cstdio>
#include <vector>

#include "train/trainer.hpp"

namespace exaclim {
namespace {

struct EvalResult {
  double iou_bg, iou_ar, iou_tc, mean_iou, accuracy;
};

EvalResult TrainAndEvaluate(const ClimateDataset& dataset,
                            TrainerOptions::Arch arch, int steps,
                            float lr, RankTrainer** out_trainer = nullptr) {
  static std::vector<std::unique_ptr<RankTrainer>> keep_alive;
  TrainerOptions o;
  o.arch = arch;
  o.tiramisu = Tiramisu::Config::Downscaled(4);
  // A widened downscaled DeepLab (the base preset underfits this task).
  o.deeplab = DeepLabV3Plus::Config::Downscaled(4);
  o.deeplab.encoder.stem_features = 12;
  o.deeplab.encoder.stage_widths = {12, 24, 48, 96};
  o.deeplab.aspp_channels = 24;
  o.deeplab.decoder_skip_channels = 12;
  o.deeplab.decoder_channels = {24, 16, 12};
  o.learning_rate = lr;
  o.local_batch = 2;

  const auto freq = dataset.MeasureFrequencies(16);
  auto trainer = std::make_unique<RankTrainer>(
      o, MakeClassWeights(freq, WeightingScheme::kInverseSqrt), 0);
  Rng rng(777);
  for (int s = 0; s < steps; ++s) {
    std::vector<std::int64_t> idx(2);
    for (auto& i : idx) {
      i = rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1);
    }
    (void)trainer->Step(dataset.MakeBatch(DatasetSplit::kTrain, idx));
  }
  const ConfusionMatrix cm =
      trainer->Evaluate(dataset, DatasetSplit::kValidation, 8);
  EvalResult r{cm.IoU(kBackground), cm.IoU(kAtmosphericRiver),
               cm.IoU(kTropicalCyclone), cm.MeanIoU(), cm.PixelAccuracy()};
  if (out_trainer != nullptr) {
    *out_trainer = trainer.get();
    keep_alive.push_back(std::move(trainer));
  }
  return r;
}

char MaskChar(std::uint8_t c) {
  switch (c) {
    case kAtmosphericRiver: return 'a';
    case kTropicalCyclone: return 'T';
    default: return '.';
  }
}

void RenderMasks(RankTrainer& trainer, const ClimateDataset& dataset) {
  // Pick the validation sample with the most event pixels to display.
  std::int64_t best = 0, best_events = -1;
  for (std::int64_t i = 0; i < dataset.size(DatasetSplit::kValidation);
       ++i) {
    const auto s = dataset.GetSample(DatasetSplit::kValidation, i);
    std::int64_t events = 0;
    for (const auto l : s.labels) events += l != kBackground;
    if (events > best_events) {
      best_events = events;
      best = i;
    }
  }
  const Batch batch = dataset.MakeBatch(DatasetSplit::kValidation,
                                        std::vector<std::int64_t>{best});
  const Tensor logits = trainer.model().Forward(batch.fields, false);
  const auto pred = PredictClasses(logits);
  const std::int64_t h = dataset.height(), w = dataset.width();
  std::printf(
      "\nValidation sample — heuristic labels (left) vs prediction "
      "(right); a = AR, T = TC\n");
  for (std::int64_t y = 0; y < h; y += 2) {  // subsample rows for width
    std::string left, right;
    for (std::int64_t x = 0; x < w; x += 1) {
      left += MaskChar(batch.labels[static_cast<std::size_t>(y * w + x)]);
      right += MaskChar(pred[static_cast<std::size_t>(y * w + x)]);
    }
    std::printf("%s | %s\n", left.c_str(), right.c_str());
  }
}

}  // namespace

int Main() {
  ClimateDataset::Options data;
  data.num_samples = 80;
  data.generator.height = 48;
  data.generator.width = 48;
  data.channels = {kTMQ, kU850, kV850, kPSL};
  const ClimateDataset dataset(data);

  std::printf("Fig 7 / Sec VII-D — segmentation quality (validation split)\n");
  std::printf("%-12s %8s %8s %8s %9s %9s   %s\n", "network", "IoU(BG)",
              "IoU(AR)", "IoU(TC)", "mean IoU", "accuracy", "paper mIoU");

  RankTrainer* deeplab_trainer = nullptr;
  const EvalResult tiramisu =
      TrainAndEvaluate(dataset, TrainerOptions::Arch::kTiramisu, 220, 2e-3f);
  std::printf("%-12s %7.1f%% %7.1f%% %7.1f%% %8.1f%% %8.1f%%   59%%\n",
              "Tiramisu", tiramisu.iou_bg * 100, tiramisu.iou_ar * 100,
              tiramisu.iou_tc * 100, tiramisu.mean_iou * 100,
              tiramisu.accuracy * 100);
  // The deeper encoder-decoder needs more optimisation steps on the
  // downscaled problem (the paper trained both to full convergence).
  const EvalResult deeplab = TrainAndEvaluate(
      dataset, TrainerOptions::Arch::kDeepLab, 700, 3e-3f,
      &deeplab_trainer);
  std::printf("%-12s %7.1f%% %7.1f%% %7.1f%% %8.1f%% %8.1f%%   73%%\n",
              "DeepLabv3+", deeplab.iou_bg * 100, deeplab.iou_ar * 100,
              deeplab.iou_tc * 100, deeplab.mean_iou * 100,
              deeplab.accuracy * 100);

  // Degenerate baseline for context (Sec V-B1).
  ConfusionMatrix degenerate(kNumClimateClasses);
  for (std::int64_t i = 0; i < 6; ++i) {
    const auto sample = dataset.GetSample(DatasetSplit::kValidation, i);
    const std::vector<std::uint8_t> all_bg(sample.labels.size(),
                                           kBackground);
    degenerate.Add(all_bg, sample.labels);
  }
  std::printf("%-12s %7.1f%% %7.1f%% %7.1f%% %8.1f%% %8.1f%%   (collapse)\n",
              "all-BG", degenerate.IoU(0) * 100, degenerate.IoU(1) * 100,
              degenerate.IoU(2) * 100, degenerate.MeanIoU() * 100,
              degenerate.PixelAccuracy() * 100);

  std::printf(
      "\nNote: the paper's ordering (DeepLabv3+ 73%% > Tiramisu 59%%) is a\n"
      "full-resolution phenomenon; at this downscale the shallow\n"
      "full-resolution Tiramisu fits the near-local heuristic labels more\n"
      "easily (see the header comment and EXPERIMENTS.md).\n");
  if (deeplab_trainer != nullptr) RenderMasks(*deeplab_trainer, dataset);
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
