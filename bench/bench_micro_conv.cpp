// Microbenchmarks of the convolution layer variants (plain, strided,
// atrous, transposed) and the FP16 emulation overhead.

#include <benchmark/benchmark.h>

#include "nn/conv.hpp"

namespace exaclim {
namespace {

Tensor Input(std::int64_t c, std::int64_t h, std::int64_t w) {
  Rng rng(1);
  return Tensor::Uniform(TensorShape::NCHW(1, c, h, w), rng, -1, 1);
}

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  Conv2d conv("c", {.in_c = 32, .out_c = 32}, rng);
  const Tensor x = Input(32, 48, 48);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.Raw());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(3);
  Conv2d conv("c", {.in_c = 32, .out_c = 32}, rng);
  const Tensor x = Input(32, 48, 48);
  const Tensor y = conv.Forward(x, true);
  Rng grng(4);
  const Tensor g = Tensor::Uniform(y.shape(), grng, -1, 1);
  for (auto _ : state) {
    (void)conv.Forward(x, true);
    Tensor gx = conv.Backward(g);
    benchmark::DoNotOptimize(gx.Raw());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_Conv2dAtrous(benchmark::State& state) {
  const auto d = static_cast<std::int64_t>(state.range(0));
  Rng rng(5);
  Conv2d conv("c",
              {.in_c = 32, .out_c = 32, .kernel = 3, .pad = d, .dilation = d},
              rng);
  const Tensor x = Input(32, 48, 48);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.Raw());
  }
}
BENCHMARK(BM_Conv2dAtrous)->Arg(1)->Arg(4)->Arg(12);

void BM_ConvTranspose2d(benchmark::State& state) {
  Rng rng(6);
  ConvTranspose2d deconv(
      "d", {.in_c = 32, .out_c = 32, .kernel = 3, .stride = 2, .pad = 1,
            .out_pad = 1},
      rng);
  const Tensor x = Input(32, 24, 24);
  for (auto _ : state) {
    Tensor y = deconv.Forward(x, false);
    benchmark::DoNotOptimize(y.Raw());
  }
}
BENCHMARK(BM_ConvTranspose2d);

void BM_Conv2dForwardFP16Emulation(benchmark::State& state) {
  Rng rng(7);
  Conv2d conv("c", {.in_c = 32, .out_c = 32}, rng);
  conv.SetPrecision(Precision::kFP16);
  const Tensor x = Input(32, 48, 48);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.Raw());
  }
}
BENCHMARK(BM_Conv2dForwardFP16Emulation);

}  // namespace
}  // namespace exaclim
