// Microbenchmarks of the convolution layer variants (plain, strided,
// atrous, transposed) and the FP16 emulation overhead — plus the
// batch-parallel engine comparison, which times forward+backward in both
// engine modes and records them through BenchReport
// (BENCH_micro_conv.json, the repo's conv perf-trajectory datapoint;
// the ci.sh perf-smoke stage asserts parallel <= serial).
//
// Custom main: google-benchmark cases run first (skip them with
// --benchmark_filter='-.*'), then the engine comparison.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/thread_pool.hpp"
#include "nn/conv.hpp"
#include "obs/bench_report.hpp"
#include "stats/stats.hpp"

namespace exaclim {
namespace {

Tensor Input(std::int64_t c, std::int64_t h, std::int64_t w) {
  Rng rng(1);
  return Tensor::Uniform(TensorShape::NCHW(1, c, h, w), rng, -1, 1);
}

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  Conv2d conv("c", {.in_c = 32, .out_c = 32}, rng);
  const Tensor x = Input(32, 48, 48);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.Raw());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(3);
  Conv2d conv("c", {.in_c = 32, .out_c = 32}, rng);
  const Tensor x = Input(32, 48, 48);
  const Tensor y = conv.Forward(x, true);
  Rng grng(4);
  const Tensor g = Tensor::Uniform(y.shape(), grng, -1, 1);
  for (auto _ : state) {
    (void)conv.Forward(x, true);
    Tensor gx = conv.Backward(g);
    benchmark::DoNotOptimize(gx.Raw());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_Conv2dAtrous(benchmark::State& state) {
  const auto d = static_cast<std::int64_t>(state.range(0));
  Rng rng(5);
  Conv2d conv("c",
              {.in_c = 32, .out_c = 32, .kernel = 3, .pad = d, .dilation = d},
              rng);
  const Tensor x = Input(32, 48, 48);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.Raw());
  }
}
BENCHMARK(BM_Conv2dAtrous)->Arg(1)->Arg(4)->Arg(12);

void BM_ConvTranspose2d(benchmark::State& state) {
  Rng rng(6);
  ConvTranspose2d deconv(
      "d", {.in_c = 32, .out_c = 32, .kernel = 3, .stride = 2, .pad = 1,
            .out_pad = 1},
      rng);
  const Tensor x = Input(32, 24, 24);
  for (auto _ : state) {
    Tensor y = deconv.Forward(x, false);
    benchmark::DoNotOptimize(y.Raw());
  }
}
BENCHMARK(BM_ConvTranspose2d);

void BM_Conv2dForwardFP16Emulation(benchmark::State& state) {
  Rng rng(7);
  Conv2d conv("c", {.in_c = 32, .out_c = 32}, rng);
  conv.SetPrecision(Precision::kFP16);
  const Tensor x = Input(32, 48, 48);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.Raw());
  }
}
BENCHMARK(BM_Conv2dForwardFP16Emulation);

// ------------------------------------------ engine mode comparison -----

using Clock = std::chrono::steady_clock;

double TimeStepMs(Conv2d& conv, const Tensor& x, const Tensor& g) {
  for (Param* p : conv.Params()) p->grad.SetZero();
  const auto start = Clock::now();
  (void)conv.Forward(x, true);
  Tensor gx = conv.Backward(g);
  benchmark::DoNotOptimize(gx.Raw());
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Times forward+backward of a Tiramisu-growth-scale 3x3 conv at several
// batch sizes, serial batch walk vs batch-parallel engine.
void RunEngineComparison() {
  obs::BenchReport report("micro_conv");
  report.AddScalar("threads",
                   static_cast<double>(ThreadPool::Global().size() + 1));

  constexpr int kRounds = 5;
  std::printf(
      "\nbatch-parallel conv engine (3x3 32->32 on 48x48, fwd+bwd, "
      "median of %d):\n  %5s %12s %14s %9s\n",
      kRounds, "batch", "serial [ms]", "parallel [ms]", "speedup");
  for (const std::int64_t batch : {1, 4, 8}) {
    Rng rng(2);
    Conv2d conv("c", {.in_c = 32, .out_c = 32}, rng);
    Rng xrng(3);
    const Tensor x = Tensor::Uniform(TensorShape::NCHW(batch, 32, 48, 48),
                                     xrng, -1, 1);
    Rng grng(4);
    const Tensor g =
        Tensor::Uniform(conv.OutputShape(x.shape()), grng, -1, 1);

    double medians[2] = {0, 0};
    for (const bool parallel : {false, true}) {
      SetConvBatchParallel(parallel);
      (void)TimeStepMs(conv, x, g);  // warm-up (sizes the workspace)
      std::vector<double> times;
      times.reserve(kRounds);
      for (int r = 0; r < kRounds; ++r) {
        times.push_back(TimeStepMs(conv, x, g));
      }
      const std::string metric =
          std::string("fwd_bwd_") + (parallel ? "parallel" : "serial") +
          "_b" + std::to_string(batch) + "_ms";
      report.AddSeries(metric, times);
      medians[parallel ? 1 : 0] = Summarize(times).median;
    }
    SetConvBatchParallel(true);
    const double speedup = medians[1] > 0 ? medians[0] / medians[1] : 0;
    std::printf("  %5lld %12.3f %14.3f %8.2fx\n",
                static_cast<long long>(batch), medians[0], medians[1],
                speedup);
    if (batch > 1) {
      report.AddScalar("speedup_parallel_b" + std::to_string(batch),
                       speedup);
    }
  }
  const auto path = report.WriteJsonFile();
  if (!path.empty()) std::printf("  wrote %s\n", path.string().c_str());
}

}  // namespace
}  // namespace exaclim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  exaclim::RunEngineComparison();
  return 0;
}
