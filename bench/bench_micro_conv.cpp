// Microbenchmarks of the convolution layer variants (plain, strided,
// atrous, transposed) and the FP16 emulation overhead — plus the
// batch-parallel engine comparison, which times forward+backward in both
// engine modes and records them through BenchReport
// (BENCH_micro_conv.json, the repo's conv perf-trajectory datapoint;
// the ci.sh perf-smoke stage asserts parallel <= serial).
//
// Custom main: google-benchmark cases run first (skip them with
// --benchmark_filter='-.*'), then the engine comparison.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/conv_engine.hpp"
#include "nn/norm.hpp"
#include "nn/sequential.hpp"
#include "obs/bench_report.hpp"
#include "stats/stats.hpp"

namespace exaclim {
namespace {

Tensor Input(std::int64_t c, std::int64_t h, std::int64_t w) {
  Rng rng(1);
  return Tensor::Uniform(TensorShape::NCHW(1, c, h, w), rng, -1, 1);
}

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  Conv2d conv("c", {.in_c = 32, .out_c = 32}, rng);
  const Tensor x = Input(32, 48, 48);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.Raw());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(3);
  Conv2d conv("c", {.in_c = 32, .out_c = 32}, rng);
  const Tensor x = Input(32, 48, 48);
  const Tensor y = conv.Forward(x, true);
  Rng grng(4);
  const Tensor g = Tensor::Uniform(y.shape(), grng, -1, 1);
  for (auto _ : state) {
    (void)conv.Forward(x, true);
    Tensor gx = conv.Backward(g);
    benchmark::DoNotOptimize(gx.Raw());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_Conv2dAtrous(benchmark::State& state) {
  const auto d = static_cast<std::int64_t>(state.range(0));
  Rng rng(5);
  Conv2d conv("c",
              {.in_c = 32, .out_c = 32, .kernel = 3, .pad = d, .dilation = d},
              rng);
  const Tensor x = Input(32, 48, 48);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.Raw());
  }
}
BENCHMARK(BM_Conv2dAtrous)->Arg(1)->Arg(4)->Arg(12);

void BM_ConvTranspose2d(benchmark::State& state) {
  Rng rng(6);
  ConvTranspose2d deconv(
      "d", {.in_c = 32, .out_c = 32, .kernel = 3, .stride = 2, .pad = 1,
            .out_pad = 1},
      rng);
  const Tensor x = Input(32, 24, 24);
  for (auto _ : state) {
    Tensor y = deconv.Forward(x, false);
    benchmark::DoNotOptimize(y.Raw());
  }
}
BENCHMARK(BM_ConvTranspose2d);

void BM_Conv2dForwardFP16Emulation(benchmark::State& state) {
  Rng rng(7);
  Conv2d conv("c", {.in_c = 32, .out_c = 32}, rng);
  conv.SetPrecision(Precision::kFP16);
  const Tensor x = Input(32, 48, 48);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.Raw());
  }
}
BENCHMARK(BM_Conv2dForwardFP16Emulation);

// ------------------------------------------ engine mode comparison -----

using Clock = std::chrono::steady_clock;

double TimeStepMs(Conv2d& conv, const Tensor& x, const Tensor& g) {
  for (Param* p : conv.Params()) p->grad.SetZero();
  const auto start = Clock::now();
  (void)conv.Forward(x, true);
  Tensor gx = conv.Backward(g);
  benchmark::DoNotOptimize(gx.Raw());
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Times forward+backward of a Tiramisu-growth-scale 3x3 conv at several
// batch sizes, serial batch walk vs batch-parallel engine.
void RunEngineComparison(obs::BenchReport& report) {
  constexpr int kRounds = 5;
  std::printf(
      "\nbatch-parallel conv engine (3x3 32->32 on 48x48, fwd+bwd, "
      "median of %d):\n  %5s %12s %14s %9s\n",
      kRounds, "batch", "serial [ms]", "parallel [ms]", "speedup");
  for (const std::int64_t batch : {1, 4, 8}) {
    Rng rng(2);
    Conv2d conv("c", {.in_c = 32, .out_c = 32}, rng);
    Rng xrng(3);
    const Tensor x = Tensor::Uniform(TensorShape::NCHW(batch, 32, 48, 48),
                                     xrng, -1, 1);
    Rng grng(4);
    const Tensor g =
        Tensor::Uniform(conv.OutputShape(x.shape()), grng, -1, 1);

    double medians[2] = {0, 0};
    for (const bool parallel : {false, true}) {
      SetConvBatchParallel(parallel);
      (void)TimeStepMs(conv, x, g);  // warm-up (sizes the workspace)
      std::vector<double> times;
      times.reserve(kRounds);
      for (int r = 0; r < kRounds; ++r) {
        times.push_back(TimeStepMs(conv, x, g));
      }
      const std::string metric =
          std::string("fwd_bwd_") + (parallel ? "parallel" : "serial") +
          "_b" + std::to_string(batch) + "_ms";
      report.AddSeries(metric, times);
      medians[parallel ? 1 : 0] = Summarize(times).median;
    }
    SetConvBatchParallel(true);
    const double speedup = medians[1] > 0 ? medians[0] / medians[1] : 0;
    std::printf("  %5lld %12.3f %14.3f %8.2fx\n",
                static_cast<long long>(batch), medians[0], medians[1],
                speedup);
    if (batch > 1) {
      report.AddScalar("speedup_parallel_b" + std::to_string(batch),
                       speedup);
    }
  }
}

double TimeForwardMs(Layer& layer, const Tensor& x) {
  const auto start = Clock::now();
  Tensor y = layer.Forward(x, false);
  benchmark::DoNotOptimize(y.Raw());
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// -------------------------------------- implicit GEMM vs im2col --------

// Forward timing of the implicit B-panel gather against the materialized
// im2col lowering (bit-identical outputs, so this is a pure perf A/B),
// plus the col-buffer footprint the implicit path eliminates per image.
void RunImplicitComparison(obs::BenchReport& report) {
  constexpr int kRounds = 7;
  struct Shape {
    const char* name;
    Conv2d::Options opts;
    std::int64_t h, w, batch;
  };
  const Shape shapes[] = {
      {"b4", {.in_c = 32, .out_c = 32}, 48, 48, 4},  // the conv-tile shape
      {"atrous",
       {.in_c = 32, .out_c = 32, .kernel = 3, .pad = 4, .dilation = 4},
       48, 48, 2},
      {"stride2",
       {.in_c = 16, .out_c = 32, .kernel = 3, .stride = 2, .pad = 1},
       96, 96, 2},
  };
  std::printf(
      "\nimplicit GEMM vs im2col (forward, median of %d):\n"
      "  %8s %12s %14s %9s %14s\n",
      kRounds, "shape", "im2col [ms]", "implicit [ms]", "speedup",
      "col bytes/img");
  for (const Shape& s : shapes) {
    Rng xrng(3);
    const Tensor x = Tensor::Uniform(
        TensorShape::NCHW(s.batch, s.opts.in_c, s.h, s.w), xrng, -1, 1);
    double medians[2] = {0, 0};
    std::int64_t col_bytes = 0;
    for (const bool implicit : {false, true}) {
      Conv2d::Options opts = s.opts;
      opts.algorithm = implicit ? ConvAlgorithm::kImplicitGemm
                                : ConvAlgorithm::kIm2Col;
      Rng rng(2);
      Conv2d conv("c", opts, rng);
      const TensorShape out = conv.OutputShape(x.shape());
      col_bytes = s.opts.in_c * opts.kernel * opts.kernel * out.h() *
                  out.w() * static_cast<std::int64_t>(sizeof(float));
      (void)TimeForwardMs(conv, x);  // warm-up (workspace + row tables)
      std::vector<double> times;
      times.reserve(kRounds);
      for (int r = 0; r < kRounds; ++r) {
        times.push_back(TimeForwardMs(conv, x));
      }
      const std::string metric = std::string("conv_") +
                                 (implicit ? "implicit_" : "im2col_") +
                                 s.name + "_ms";
      report.AddSeries(metric, times);
      medians[implicit ? 1 : 0] = Summarize(times).median;
    }
    const double speedup = medians[1] > 0 ? medians[0] / medians[1] : 0;
    report.AddScalar(std::string("implicit_speedup_") + s.name, speedup);
    report.AddScalar(std::string("col_bytes_eliminated_") + s.name,
                     static_cast<double>(col_bytes));
    std::printf("  %8s %12.3f %14.3f %8.2fx %14lld\n", s.name, medians[0],
                medians[1], speedup, static_cast<long long>(col_bytes));
  }
}

// ---------------------------------------- fused epilogue chains --------

// Eval-mode Conv2d→BatchNorm2d→ReLU: unfused layer walk vs the fused
// GEMM-epilogue fold (bias + BN scale/shift + ReLU in the C writeback).
void RunFusionComparison(obs::BenchReport& report) {
  constexpr int kRounds = 7;
  struct Shape {
    const char* name;
    Conv2d::Options opts;
    std::int64_t h, w, batch;
  };
  const Shape shapes[] = {
      {"tile", {.in_c = 32, .out_c = 32}, 48, 48, 4},  // conv-tile 3x3
      {"pointwise", {.in_c = 32, .out_c = 48, .kernel = 1, .pad = 0},
       64, 64, 4},
  };
  const bool saved_fuse = ConvFusionEnabled();
  std::printf(
      "\nfused conv->BN->ReLU epilogue (eval forward, median of %d):\n"
      "  %10s %13s %11s %9s\n",
      kRounds, "shape", "unfused [ms]", "fused [ms]", "speedup");
  for (const Shape& s : shapes) {
    Rng xrng(3);
    const Tensor x = Tensor::Uniform(
        TensorShape::NCHW(s.batch, s.opts.in_c, s.h, s.w), xrng, -1, 1);
    double medians[2] = {0, 0};
    for (const bool fuse : {false, true}) {
      SetConvFusion(fuse);
      Rng rng(2);
      Sequential seq("chain");
      seq.Emplace<Conv2d>("c", s.opts, rng);
      seq.Emplace<BatchNorm2d>("bn", s.opts.out_c);
      seq.Emplace<ReLU>("r");
      (void)seq.Forward(x, true);   // warm running stats + buffers
      (void)TimeForwardMs(seq, x);  // warm the eval path
      std::vector<double> times;
      times.reserve(kRounds);
      for (int r = 0; r < kRounds; ++r) {
        times.push_back(TimeForwardMs(seq, x));
      }
      const std::string metric = std::string("conv_") +
                                 (fuse ? "fused_" : "unfused_") + s.name +
                                 "_eval_ms";
      report.AddSeries(metric, times);
      medians[fuse ? 1 : 0] = Summarize(times).median;
    }
    const double speedup = medians[1] > 0 ? medians[0] / medians[1] : 0;
    report.AddScalar(std::string("fused_speedup_") + s.name, speedup);
    std::printf("  %10s %13.3f %11.3f %8.2fx\n", s.name, medians[0],
                medians[1], speedup);
  }
  SetConvFusion(saved_fuse);
}

void RunComparisons() {
  obs::BenchReport report("micro_conv");
  report.AddScalar("threads",
                   static_cast<double>(ThreadPool::Global().size() + 1));
  RunEngineComparison(report);
  RunImplicitComparison(report);
  RunFusionComparison(report);
  const auto path = report.WriteJsonFile();
  if (!path.empty()) std::printf("  wrote %s\n", path.string().c_str());
}

}  // namespace
}  // namespace exaclim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  exaclim::RunComparisons();
  return 0;
}
