// Reproduces Figs 3, 8 and 9: single-node kernel-category analysis of
// training both networks in FP32 and FP16 — kernel counts, absolute
// time / math / memory per category (Figs 8/9) and the percentage view
// (Fig 3). Derived from the graph-based cost analysis (flops/) timed by
// the roofline model (netsim/), which is this substrate's stand-in for
// the paper's CUDA-profiler measurements.

#include <cstdio>

#include "netsim/roofline.hpp"

namespace exaclim {
namespace {

void PrintNetworkTable(const char* title, const ArchSpec& spec,
                       Precision precision, std::int64_t batch) {
  const MachineModel summit = MachineModel::Summit();
  const TrainingCost cost = AnalyzeTraining(spec, precision, batch);
  const StepTimeBreakdown times =
      SingleGpuStepTime(cost, summit, precision);

  std::printf("%s — %s training (batch %lld)\n", title, ToString(precision),
              static_cast<long long>(batch));
  std::printf(
      "%-22s %6s %9s %9s %9s %7s %7s %7s\n", "Category", "#Kern",
      "Time(ms)", "Math(TF)", "Mem(GB)", "%Time", "%Math", "%Mem");
  for (int c = 0; c < kNumKernelCategories; ++c) {
    const auto cat = static_cast<KernelCategory>(c);
    const CategoryCost& cc = cost.at(cat);
    const double t = times.at(cat);
    if (cc.kernels == 0 && t == 0.0) continue;
    const double peak = summit.gpu.Peak(precision);
    const double pct_math =
        t > 0 ? cc.flops / (peak * t) * 100.0 : 0.0;
    const double pct_mem =
        t > 0 ? cc.bytes / (summit.gpu.mem_bw * t) * 100.0 : 0.0;
    std::printf("%-22s %6lld %9.1f %9.2f %9.1f %6.1f%% %6.1f%% %6.1f%%\n",
                ToString(cat), static_cast<long long>(cc.kernels), t * 1e3,
                cc.flops / 1e12, cc.bytes / 1e9, t / times.total * 100.0,
                pct_math, pct_mem);
  }
  std::printf("%-22s %6s %9.1f %9.2f %9.1f\n\n", "Total", "",
              times.total * 1e3, cost.TotalFlops() / 1e12,
              cost.TotalBytes() / 1e9);
}

}  // namespace

int Main() {
  std::printf(
      "Figs 3/8/9 — kernel-category breakdown on one Summit GPU\n"
      "(analytic roofline stand-in for the paper's profiler runs; the\n"
      " structural findings reproduce: convolutions carry ~all math, FP32\n"
      " convs run near math peak while FP16 convs drop toward memory\n"
      " bounds, pointwise/copy kernels are bandwidth-bound)\n\n");

  const ArchSpec tiramisu = PaperTiramisuSpec(16);
  const ArchSpec deeplab = PaperDeepLabSpec(16);

  PrintNetworkTable("Fig 8: Tiramisu", tiramisu, Precision::kFP32, 1);
  PrintNetworkTable("Fig 8: Tiramisu", tiramisu, Precision::kFP16, 2);
  PrintNetworkTable("Fig 9: DeepLabv3+", deeplab, Precision::kFP32, 1);
  PrintNetworkTable("Fig 9: DeepLabv3+", deeplab, Precision::kFP16, 2);

  // The Sec VII-A data-layout observation: copies/transposes take a
  // larger share of the FP16 step (paper: 12.3% vs 5.5% Tiramisu, 26.1%
  // vs 8.6% DeepLab).
  for (const auto* spec : {&tiramisu, &deeplab}) {
    const auto c32 = AnalyzeTraining(*spec, Precision::kFP32, 1);
    const auto c16 = AnalyzeTraining(*spec, Precision::kFP16, 2);
    const MachineModel summit = MachineModel::Summit();
    const auto t32 = SingleGpuStepTime(c32, summit, Precision::kFP32);
    const auto t16 = SingleGpuStepTime(c16, summit, Precision::kFP16);
    std::printf(
        "%s: copies share of step  FP32 %.1f%%  ->  FP16 %.1f%%\n",
        spec->name.c_str(),
        t32.at(KernelCategory::kCopies) / t32.total * 100.0,
        t16.at(KernelCategory::kCopies) / t16.total * 100.0);
  }
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
