// Batch-parallel convolution engine (DESIGN §9): serial-vs-parallel
// bit-exactness of gradients, the nesting-aware thread-pool policy as
// seen from conv, workspace reuse across geometry changes, and the GEMM
// correctness fixes that rode along (k == 0 fast path, grain clamp).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/conv_engine.hpp"
#include "nn/norm.hpp"
#include "nn/sequential.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_kernel.hpp"

namespace exaclim {
namespace {

/// Restores the engine mode on scope exit so tests cannot leak state.
struct EngineModeGuard {
  bool saved = ConvBatchParallelEnabled();
  ~EngineModeGuard() { SetConvBatchParallel(saved); }
};

struct GradSnapshot {
  std::vector<float> output;
  std::vector<float> grad_input;
  std::vector<std::vector<float>> param_grads;
};

template <typename LayerT>
GradSnapshot RunStep(LayerT& layer, const Tensor& x, const Tensor& g,
                     bool parallel) {
  SetConvBatchParallel(parallel);
  for (Param* p : layer.Params()) p->grad.SetZero();
  const Tensor y = layer.Forward(x, true);
  const Tensor gx = layer.Backward(g);
  GradSnapshot snap;
  snap.output.assign(y.Data().begin(), y.Data().end());
  snap.grad_input.assign(gx.Data().begin(), gx.Data().end());
  for (Param* p : layer.Params()) {
    snap.param_grads.emplace_back(p->grad.Data().begin(),
                                  p->grad.Data().end());
  }
  return snap;
}

void ExpectBitIdentical(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << ": serial and parallel results differ bitwise";
}

void ExpectBitIdentical(const GradSnapshot& serial,
                        const GradSnapshot& parallel) {
  ExpectBitIdentical(serial.output, parallel.output, "output");
  ExpectBitIdentical(serial.grad_input, parallel.grad_input, "grad_input");
  ASSERT_EQ(serial.param_grads.size(), parallel.param_grads.size());
  for (std::size_t i = 0; i < serial.param_grads.size(); ++i) {
    ExpectBitIdentical(serial.param_grads[i], parallel.param_grads[i],
                       "param grad");
  }
}

class ConvEngineBitExact : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ConvEngineBitExact, Conv2dBackwardMatchesSerialBitwise) {
  EngineModeGuard guard;
  const std::int64_t batch = GetParam();
  Rng rng(7);
  Conv2d conv("c", {.in_c = 5, .out_c = 4, .kernel = 3}, rng);
  Rng xrng(11);
  const Tensor x = Tensor::Uniform(TensorShape::NCHW(batch, 5, 9, 8), xrng,
                                   -1.0f, 1.0f);
  Rng grng(13);
  const Tensor g =
      Tensor::Uniform(conv.OutputShape(x.shape()), grng, -1.0f, 1.0f);

  const GradSnapshot serial = RunStep(conv, x, g, /*parallel=*/false);
  const GradSnapshot parallel = RunStep(conv, x, g, /*parallel=*/true);
  ExpectBitIdentical(serial, parallel);
}

TEST_P(ConvEngineBitExact, PointwiseConvBackwardMatchesSerialBitwise) {
  EngineModeGuard guard;
  const std::int64_t batch = GetParam();
  Rng rng(17);
  Conv2d conv("p", {.in_c = 6, .out_c = 3, .kernel = 1, .pad = 0}, rng);
  Rng xrng(19);
  const Tensor x = Tensor::Uniform(TensorShape::NCHW(batch, 6, 7, 7), xrng,
                                   -1.0f, 1.0f);
  Rng grng(23);
  const Tensor g =
      Tensor::Uniform(conv.OutputShape(x.shape()), grng, -1.0f, 1.0f);

  const GradSnapshot serial = RunStep(conv, x, g, /*parallel=*/false);
  const GradSnapshot parallel = RunStep(conv, x, g, /*parallel=*/true);
  ExpectBitIdentical(serial, parallel);
}

TEST_P(ConvEngineBitExact, ConvTransposeBackwardMatchesSerialBitwise) {
  EngineModeGuard guard;
  const std::int64_t batch = GetParam();
  Rng rng(29);
  ConvTranspose2d deconv(
      "d", {.in_c = 4, .out_c = 3, .kernel = 3, .stride = 2, .out_pad = 1},
      rng);
  Rng xrng(31);
  const Tensor x = Tensor::Uniform(TensorShape::NCHW(batch, 4, 5, 6), xrng,
                                   -1.0f, 1.0f);
  Rng grng(37);
  const Tensor g =
      Tensor::Uniform(deconv.OutputShape(x.shape()), grng, -1.0f, 1.0f);

  const GradSnapshot serial = RunStep(deconv, x, g, /*parallel=*/false);
  const GradSnapshot parallel = RunStep(deconv, x, g, /*parallel=*/true);
  ExpectBitIdentical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(Batches, ConvEngineBitExact,
                         ::testing::Values(1, 3, 8));

// The shard partition must cover the batch exactly once, in order.
TEST(ConvEngine, ShardRangesPartitionTheBatch) {
  for (const std::int64_t n : {1, 2, 3, 7, 8, 16, 17, 33}) {
    const std::int64_t shards = ConvGradShards(n);
    EXPECT_GE(shards, 1);
    EXPECT_LE(shards, n);
    std::int64_t expect_lo = 0;
    for (std::int64_t s = 0; s < shards; ++s) {
      const ConvShardRange r = ShardImageRange(n, shards, s);
      EXPECT_EQ(r.lo, expect_lo) << "n=" << n << " s=" << s;
      EXPECT_LE(r.lo, r.hi);
      expect_lo = r.hi;
    }
    EXPECT_EQ(expect_lo, n) << "n=" << n;
  }
}

// With the engine disabled, shards run serially in shard order on the
// calling thread.
TEST(ConvEngine, DisabledModeRunsShardsInOrder) {
  EngineModeGuard guard;
  SetConvBatchParallel(false);
  std::vector<std::int64_t> order;
  RunConvShards(5, [&](std::int64_t s) { order.push_back(s); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

// The per-layer workspace must resize correctly when the same layer sees
// different input geometries (e.g. multi-scale evaluation).
TEST(ConvEngine, WorkspaceSurvivesGeometryChanges) {
  EngineModeGuard guard;
  SetConvBatchParallel(true);
  Rng rng(41);
  Conv2d conv("c", {.in_c = 3, .out_c = 4, .kernel = 3}, rng);
  Rng rng2(41);
  Conv2d fresh("c", {.in_c = 3, .out_c = 4, .kernel = 3}, rng2);
  for (const auto& [h, w, batch] :
       {std::tuple{8, 8, 4}, {12, 10, 2}, {6, 14, 8}, {8, 8, 4}}) {
    Rng xrng(static_cast<std::uint64_t>(h * 100 + w));
    const Tensor x = Tensor::Uniform(TensorShape::NCHW(batch, 3, h, w),
                                     xrng, -1.0f, 1.0f);
    const Tensor got = conv.Forward(x, false);
    const Tensor want = fresh.Forward(x, false);
    ASSERT_EQ(got.shape(), want.shape());
    EXPECT_EQ(0, std::memcmp(got.Raw(), want.Raw(),
                             static_cast<std::size_t>(got.NumElements()) *
                                 sizeof(float)))
        << h << "x" << w;
  }
}

// Default "same" padding must account for dilation: a 3x3 rate-2/4 conv
// with pad = -1 keeps the spatial map (the ASPP configuration).
TEST(ConvEngine, SamePadDefaultScalesWithDilation) {
  Rng rng(43);
  for (const std::int64_t d : {1, 2, 4}) {
    Conv2d conv("a", {.in_c = 2, .out_c = 2, .kernel = 3, .dilation = d},
                rng);
    EXPECT_EQ(conv.options().pad, d) << "dilation " << d;
    const auto out = conv.OutputShape(TensorShape::NCHW(1, 2, 12, 16));
    EXPECT_EQ(out, TensorShape::NCHW(1, 2, 12, 16)) << "dilation " << d;
  }
  Conv2d k5("k5", {.in_c = 2, .out_c = 2, .kernel = 5, .dilation = 3}, rng);
  EXPECT_EQ(k5.options().pad, 6);
}

// k == 0 with beta == 0 must overwrite C (BLAS semantics), even when C
// holds NaN/Inf garbage from an uninitialised or reused buffer.
TEST(GemmEdge, ZeroKBetaZeroOverwritesGarbage) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> c{nan, inf, -inf, 3.5f};
  Gemm(false, false, 2, 2, 0, 1.0f, nullptr, nullptr, 0.0f, c.data());
  for (const float v : c) EXPECT_EQ(v, 0.0f);

  std::vector<float> c2{1.0f, 2.0f, 3.0f, 4.0f};
  Gemm(false, false, 2, 2, 0, 1.0f, nullptr, nullptr, 0.5f, c2.data());
  EXPECT_EQ(c2, (std::vector<float>{0.5f, 1.0f, 1.5f, 2.0f}));

  std::vector<float> c3{1.0f, 2.0f, 3.0f, 4.0f};
  Gemm(false, false, 2, 2, 0, 1.0f, nullptr, nullptr, 1.0f, c3.data());
  EXPECT_EQ(c3, (std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f}));
}

// Wide-N GEMM exercises the grain clamp (one kBlockM panel minimum per
// task); validate against a naive reference.
TEST(GemmEdge, WideNMatchesNaiveReference) {
  const std::int64_t m = 3, n = 2048, k = 5;
  Rng rng(47);
  const Tensor a = Tensor::Uniform(TensorShape{m, k}, rng, -1.0f, 1.0f);
  const Tensor b = Tensor::Uniform(TensorShape{k, n}, rng, -1.0f, 1.0f);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  Gemm(false, false, m, n, k, 1.0f, a.Raw(), b.Raw(), 0.0f, c.data());
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; j += 97) {
      double want = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        want += static_cast<double>(a[static_cast<std::size_t>(i * k + p)]) *
                b[static_cast<std::size_t>(p * n + j)];
      }
      EXPECT_NEAR(c[static_cast<std::size_t>(i * n + j)], want, 1e-4)
          << i << "," << j;
    }
  }
}

// ------------- implicit GEMM + fused epilogues (DESIGN §15) -------------

/// Restores the fusion knob on scope exit.
struct FusionGuard {
  bool saved = ConvFusionEnabled();
  ~FusionGuard() { SetConvFusion(saved); }
};

/// Restores the GEMM kernel mode on scope exit.
struct KernelModeGuard {
  GemmKernelMode saved = GemmKernelModeInUse();
  ~KernelModeGuard() { SetGemmKernelMode(saved); }
};

std::vector<float> Snapshot(const Tensor& t) {
  return {t.Data().begin(), t.Data().end()};
}

struct ImplicitGeo {
  std::int64_t in_c, out_c, kernel, stride, pad, dilation;
  std::int64_t h, w;
};

class ConvImplicitBitExact : public ::testing::TestWithParam<ImplicitGeo> {};

// The implicit B-panel gather must reproduce the materialized im2col
// lowering bit-for-bit — same packed panels, same contraction order —
// with and without the bias epilogue fold.
TEST_P(ConvImplicitBitExact, ForwardMatchesIm2ColBitwise) {
  FusionGuard guard;
  const ImplicitGeo g = GetParam();
  for (const bool fuse : {false, true}) {
    SetConvFusion(fuse);
    Conv2d::Options opts{.in_c = g.in_c, .out_c = g.out_c,
                         .kernel = g.kernel, .stride = g.stride,
                         .pad = g.pad, .dilation = g.dilation,
                         .bias = true,
                         .algorithm = ConvAlgorithm::kImplicitGemm};
    Rng r1(71);
    Conv2d implicit_conv("i", opts, r1);
    opts.algorithm = ConvAlgorithm::kIm2Col;
    Rng r2(71);
    Conv2d col_conv("c", opts, r2);
    Rng xrng(73);
    const Tensor x = Tensor::Uniform(
        TensorShape::NCHW(2, g.in_c, g.h, g.w), xrng, -1.0f, 1.0f);
    const Tensor yi = implicit_conv.Forward(x, false);
    const Tensor yc = col_conv.Forward(x, false);
    ASSERT_EQ(yi.shape(), yc.shape());
    ExpectBitIdentical(Snapshot(yi), Snapshot(yc),
                       fuse ? "fused forward" : "unfused forward");
  }
}

INSTANTIATE_TEST_SUITE_P(
    GeometrySweep, ConvImplicitBitExact,
    ::testing::Values(ImplicitGeo{3, 4, 3, 1, 1, 1, 8, 9},   // plain 3x3
                      ImplicitGeo{2, 5, 1, 1, 0, 1, 7, 7},   // pointwise
                      ImplicitGeo{4, 2, 3, 2, 1, 1, 9, 10},  // strided
                      ImplicitGeo{2, 3, 3, 2, 0, 1, 9, 9},   // stride 2 pad 0
                      ImplicitGeo{2, 3, 3, 1, 2, 2, 8, 8},   // atrous d=2
                      ImplicitGeo{2, 3, 3, 1, -1, 2, 8, 8},  // dilated same
                      ImplicitGeo{2, 2, 3, 1, -1, 4, 10, 9},
                      ImplicitGeo{1, 2, 5, 2, 2, 1, 11, 10},  // 5x5 strided
                      ImplicitGeo{3, 3, 7, 2, 3, 1, 14, 14},  // stem 7x7/2
                      ImplicitGeo{2, 2, 3, 1, 6, 6, 9, 9}));  // extreme d=6

/// Runs one forward+backward step through a Conv2d(→BN)(→ReLU) chain with
/// fusion on or off, returning bitwise-comparable results. All RNG seeds
/// are fixed, so two calls differ only in the knobs under test.
GradSnapshot RunChainStep(bool fuse, bool with_bn, bool with_relu,
                          const Conv2d::Options& copts, bool train) {
  FusionGuard guard;
  SetConvFusion(fuse);
  Rng rng(91);
  Sequential seq("chain");
  seq.Emplace<Conv2d>("c", copts, rng);
  if (with_bn) seq.Emplace<BatchNorm2d>("bn", copts.out_c);
  if (with_relu) seq.Emplace<ReLU>("r");

  // Warm the BN running stats (and every pooled buffer) with a training
  // step, then measure the step under test.
  Rng wrng(93);
  const Tensor warm = Tensor::Uniform(
      TensorShape::NCHW(2, copts.in_c, 8, 8), wrng, -1.0f, 1.0f);
  (void)seq.Forward(warm, true);

  Rng xrng(95);
  const Tensor x = Tensor::Uniform(TensorShape::NCHW(2, copts.in_c, 8, 8),
                                   xrng, -1.0f, 1.0f);
  for (Param* p : seq.Params()) p->grad.SetZero();
  const Tensor y = seq.Forward(x, train);
  Rng grng(97);
  const Tensor g = Tensor::Uniform(y.shape(), grng, -1.0f, 1.0f);
  const Tensor gx = seq.Backward(g);

  GradSnapshot snap;
  snap.output = Snapshot(y);
  snap.grad_input = Snapshot(gx);
  for (Param* p : seq.Params()) snap.param_grads.push_back(Snapshot(p->grad));
  return snap;
}

constexpr Conv2d::Options kChain3x3{.in_c = 3, .out_c = 4};
constexpr Conv2d::Options kChainPointwise{.in_c = 3, .out_c = 4,
                                          .kernel = 1, .pad = 0};
constexpr Conv2d::Options kChainDirect{.in_c = 3, .out_c = 4,
                                       .algorithm = ConvAlgorithm::kDirect};
constexpr Conv2d::Options kChainIm2Col{.in_c = 3, .out_c = 4,
                                       .algorithm = ConvAlgorithm::kIm2Col};

void ExpectChainBitIdentical(bool with_bn, bool with_relu,
                             const Conv2d::Options& copts, bool train) {
  const GradSnapshot fused =
      RunChainStep(/*fuse=*/true, with_bn, with_relu, copts, train);
  const GradSnapshot unfused =
      RunChainStep(/*fuse=*/false, with_bn, with_relu, copts, train);
  ExpectBitIdentical(unfused, fused);
}

// Training: the conv's bias folds into the GEMM epilogue and the BN+ReLU
// collapse into one in-place sweep that still fills every backward cache.
TEST(ConvFusion, TrainChainMatchesUnfusedBitwise) {
  ExpectChainBitIdentical(/*with_bn=*/true, /*with_relu=*/true, kChain3x3,
                          /*train=*/true);
}

// Inference: the whole BN affine (from running stats) plus the ReLU fold
// into the GEMM epilogue — and Backward after the folded eval forward
// (the gradcheck pattern) still matches bitwise.
TEST(ConvFusion, EvalFoldMatchesUnfusedBitwise) {
  ExpectChainBitIdentical(/*with_bn=*/true, /*with_relu=*/true, kChain3x3,
                          /*train=*/false);
}

TEST(ConvFusion, ConvBnChainWithoutReluMatchesUnfused) {
  ExpectChainBitIdentical(/*with_bn=*/true, /*with_relu=*/false, kChain3x3,
                          /*train=*/true);
  ExpectChainBitIdentical(/*with_bn=*/true, /*with_relu=*/false, kChain3x3,
                          /*train=*/false);
}

TEST(ConvFusion, ConvReluChainMatchesUnfused) {
  ExpectChainBitIdentical(/*with_bn=*/false, /*with_relu=*/true, kChain3x3,
                          /*train=*/true);
  ExpectChainBitIdentical(/*with_bn=*/false, /*with_relu=*/true, kChain3x3,
                          /*train=*/false);
}

// The pointwise fast path (auto → direct 1x1) writes C through the packed
// engine too, so the full eval fold applies there.
TEST(ConvFusion, PointwiseFastPathFusesBitExact) {
  ExpectChainBitIdentical(/*with_bn=*/true, /*with_relu=*/true,
                          kChainPointwise, /*train=*/true);
  ExpectChainBitIdentical(/*with_bn=*/true, /*with_relu=*/true,
                          kChainPointwise, /*train=*/false);
}

// The materialized-col algorithm writes C through the same packed engine,
// so the epilogue fold must hold there too.
TEST(ConvFusion, Im2ColAlgorithmFusesBitExact) {
  ExpectChainBitIdentical(/*with_bn=*/true, /*with_relu=*/true,
                          kChainIm2Col, /*train=*/true);
  ExpectChainBitIdentical(/*with_bn=*/true, /*with_relu=*/true,
                          kChainIm2Col, /*train=*/false);
}

// A forced-direct 3x3 conv has no GEMM epilogue: fusion reduces to the
// in-place BN+ReLU sweep, which must still be bit-identical.
TEST(ConvFusion, DirectAlgorithmFallsBackToBnSweep) {
  ExpectChainBitIdentical(/*with_bn=*/true, /*with_relu=*/true,
                          kChainDirect, /*train=*/true);
  ExpectChainBitIdentical(/*with_bn=*/true, /*with_relu=*/true,
                          kChainDirect, /*train=*/false);
}

// Under EXACLIM_GEMM_KERNEL=reference there is no packed engine: fusion
// degrades to the BN-sweep path (no GEMM epilogue) and must still be
// bit-identical — the ci.sh A/B runs this whole suite in that mode.
TEST(ConvFusion, ReferenceKernelFallbackMatchesUnfused) {
  KernelModeGuard guard;
  SetGemmKernelMode(GemmKernelMode::kReference);
  ExpectChainBitIdentical(/*with_bn=*/true, /*with_relu=*/true, kChain3x3,
                          /*train=*/true);
  ExpectChainBitIdentical(/*with_bn=*/true, /*with_relu=*/true, kChain3x3,
                          /*train=*/false);
}

// ------------- TSan stress: the fused path's threaded writebacks --------
//
// The fused eval fold writes four output streams from the GEMM's parallel
// MR-strip tasks (C, the bias add, BatchNorm's x_hat cache and the ReLU
// mask); the train path layers an in-place BN sweep over plane-parallel
// loops. Any cross-strip overlap in those writebacks is TSan-visible
// here — this binary carries the `stress` label the TSan preset runs —
// and every round must reproduce round 0 bitwise.
TEST(ConvFusionStress, HammeredFusedChainIsRaceFreeAndBitStable) {
  for (const bool train : {true, false}) {
    GradSnapshot reference;
    for (int round = 0; round < 15; ++round) {
      GradSnapshot snap = RunChainStep(/*fuse=*/true, /*with_bn=*/true,
                                       /*with_relu=*/true, kChain3x3, train);
      if (round == 0) {
        reference = std::move(snap);
      } else {
        ExpectBitIdentical(reference, snap);
      }
    }
  }
}

// Several fused chains training and folding concurrently from caller
// threads, all sharding onto the one global pool (the multi-tower usage
// pattern). Each chain owns its layers and workspaces; nothing may bleed
// across, and each thread's eval fold must be bit-stable round to round.
TEST(ConvFusionStress, ConcurrentFusedChainsShareGlobalPool) {
  FusionGuard guard;
  SetConvFusion(true);
  constexpr int kChains = 4;
  std::vector<std::thread> threads;
  threads.reserve(kChains);
  std::vector<std::vector<float>> firsts(kChains);
  for (int t = 0; t < kChains; ++t) {
    threads.emplace_back([&firsts, t] {
      Rng rng(120 + static_cast<std::uint64_t>(t));
      Sequential seq("chain" + std::to_string(t));
      seq.Emplace<Conv2d>("c", kChain3x3, rng);
      seq.Emplace<BatchNorm2d>("bn", kChain3x3.out_c);
      seq.Emplace<ReLU>("r");
      Rng xrng(130 + static_cast<std::uint64_t>(t));
      const Tensor x = Tensor::Uniform(TensorShape::NCHW(2, kChain3x3.in_c,
                                                         8, 8),
                                       xrng, -1.0f, 1.0f);
      (void)seq.Forward(x, /*train=*/true);  // warm BN stats + buffers
      std::vector<float> first;
      for (int round = 0; round < 10; ++round) {
        const Tensor y = seq.Forward(x, /*train=*/false);  // eval fold
        if (round == 0) {
          first = Snapshot(y);
        } else {
          EXPECT_TRUE(Snapshot(y) == first)
              << "chain " << t << " diverged at round " << round;
        }
      }
      firsts[static_cast<std::size_t>(t)] = std::move(first);
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& f : firsts) EXPECT_FALSE(f.empty());
}

// A conv issued while the engine is batch-parallel must keep its nested
// GEMMs inline: InParallelRegion is observable from inside a shard when
// the pool actually forked.
TEST(ConvEngine, NestedParallelForFromShardRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> nested_inline{0};
  pool.ParallelFor(
      0, 8,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_TRUE(ThreadPool::InParallelRegion());
        // A nested call must run inline over the full range, exactly once.
        int calls = 0;
        std::size_t seen = 0;
        pool.ParallelFor(
            0, 1000,
            [&](std::size_t b, std::size_t e) {
              ++calls;
              seen += e - b;
            },
            /*grain=*/1);
        EXPECT_EQ(calls, 1);
        EXPECT_EQ(seen, 1000u);
        nested_inline.fetch_add(static_cast<int>(hi - lo));
      },
      /*grain=*/1);
  EXPECT_EQ(nested_inline.load(), 8);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

}  // namespace
}  // namespace exaclim
