// Batch-parallel convolution engine (DESIGN §9): serial-vs-parallel
// bit-exactness of gradients, the nesting-aware thread-pool policy as
// seen from conv, workspace reuse across geometry changes, and the GEMM
// correctness fixes that rode along (k == 0 fast path, grain clamp).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>
#include <tuple>
#include <vector>

#include "common/thread_pool.hpp"
#include "nn/conv.hpp"
#include "nn/conv_engine.hpp"
#include "tensor/gemm.hpp"

namespace exaclim {
namespace {

/// Restores the engine mode on scope exit so tests cannot leak state.
struct EngineModeGuard {
  bool saved = ConvBatchParallelEnabled();
  ~EngineModeGuard() { SetConvBatchParallel(saved); }
};

struct GradSnapshot {
  std::vector<float> output;
  std::vector<float> grad_input;
  std::vector<std::vector<float>> param_grads;
};

template <typename LayerT>
GradSnapshot RunStep(LayerT& layer, const Tensor& x, const Tensor& g,
                     bool parallel) {
  SetConvBatchParallel(parallel);
  for (Param* p : layer.Params()) p->grad.SetZero();
  const Tensor y = layer.Forward(x, true);
  const Tensor gx = layer.Backward(g);
  GradSnapshot snap;
  snap.output.assign(y.Data().begin(), y.Data().end());
  snap.grad_input.assign(gx.Data().begin(), gx.Data().end());
  for (Param* p : layer.Params()) {
    snap.param_grads.emplace_back(p->grad.Data().begin(),
                                  p->grad.Data().end());
  }
  return snap;
}

void ExpectBitIdentical(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << ": serial and parallel results differ bitwise";
}

void ExpectBitIdentical(const GradSnapshot& serial,
                        const GradSnapshot& parallel) {
  ExpectBitIdentical(serial.output, parallel.output, "output");
  ExpectBitIdentical(serial.grad_input, parallel.grad_input, "grad_input");
  ASSERT_EQ(serial.param_grads.size(), parallel.param_grads.size());
  for (std::size_t i = 0; i < serial.param_grads.size(); ++i) {
    ExpectBitIdentical(serial.param_grads[i], parallel.param_grads[i],
                       "param grad");
  }
}

class ConvEngineBitExact : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ConvEngineBitExact, Conv2dBackwardMatchesSerialBitwise) {
  EngineModeGuard guard;
  const std::int64_t batch = GetParam();
  Rng rng(7);
  Conv2d conv("c", {.in_c = 5, .out_c = 4, .kernel = 3}, rng);
  Rng xrng(11);
  const Tensor x = Tensor::Uniform(TensorShape::NCHW(batch, 5, 9, 8), xrng,
                                   -1.0f, 1.0f);
  Rng grng(13);
  const Tensor g =
      Tensor::Uniform(conv.OutputShape(x.shape()), grng, -1.0f, 1.0f);

  const GradSnapshot serial = RunStep(conv, x, g, /*parallel=*/false);
  const GradSnapshot parallel = RunStep(conv, x, g, /*parallel=*/true);
  ExpectBitIdentical(serial, parallel);
}

TEST_P(ConvEngineBitExact, PointwiseConvBackwardMatchesSerialBitwise) {
  EngineModeGuard guard;
  const std::int64_t batch = GetParam();
  Rng rng(17);
  Conv2d conv("p", {.in_c = 6, .out_c = 3, .kernel = 1, .pad = 0}, rng);
  Rng xrng(19);
  const Tensor x = Tensor::Uniform(TensorShape::NCHW(batch, 6, 7, 7), xrng,
                                   -1.0f, 1.0f);
  Rng grng(23);
  const Tensor g =
      Tensor::Uniform(conv.OutputShape(x.shape()), grng, -1.0f, 1.0f);

  const GradSnapshot serial = RunStep(conv, x, g, /*parallel=*/false);
  const GradSnapshot parallel = RunStep(conv, x, g, /*parallel=*/true);
  ExpectBitIdentical(serial, parallel);
}

TEST_P(ConvEngineBitExact, ConvTransposeBackwardMatchesSerialBitwise) {
  EngineModeGuard guard;
  const std::int64_t batch = GetParam();
  Rng rng(29);
  ConvTranspose2d deconv(
      "d", {.in_c = 4, .out_c = 3, .kernel = 3, .stride = 2, .out_pad = 1},
      rng);
  Rng xrng(31);
  const Tensor x = Tensor::Uniform(TensorShape::NCHW(batch, 4, 5, 6), xrng,
                                   -1.0f, 1.0f);
  Rng grng(37);
  const Tensor g =
      Tensor::Uniform(deconv.OutputShape(x.shape()), grng, -1.0f, 1.0f);

  const GradSnapshot serial = RunStep(deconv, x, g, /*parallel=*/false);
  const GradSnapshot parallel = RunStep(deconv, x, g, /*parallel=*/true);
  ExpectBitIdentical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(Batches, ConvEngineBitExact,
                         ::testing::Values(1, 3, 8));

// The shard partition must cover the batch exactly once, in order.
TEST(ConvEngine, ShardRangesPartitionTheBatch) {
  for (const std::int64_t n : {1, 2, 3, 7, 8, 16, 17, 33}) {
    const std::int64_t shards = ConvGradShards(n);
    EXPECT_GE(shards, 1);
    EXPECT_LE(shards, n);
    std::int64_t expect_lo = 0;
    for (std::int64_t s = 0; s < shards; ++s) {
      const ConvShardRange r = ShardImageRange(n, shards, s);
      EXPECT_EQ(r.lo, expect_lo) << "n=" << n << " s=" << s;
      EXPECT_LE(r.lo, r.hi);
      expect_lo = r.hi;
    }
    EXPECT_EQ(expect_lo, n) << "n=" << n;
  }
}

// With the engine disabled, shards run serially in shard order on the
// calling thread.
TEST(ConvEngine, DisabledModeRunsShardsInOrder) {
  EngineModeGuard guard;
  SetConvBatchParallel(false);
  std::vector<std::int64_t> order;
  RunConvShards(5, [&](std::int64_t s) { order.push_back(s); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

// The per-layer workspace must resize correctly when the same layer sees
// different input geometries (e.g. multi-scale evaluation).
TEST(ConvEngine, WorkspaceSurvivesGeometryChanges) {
  EngineModeGuard guard;
  SetConvBatchParallel(true);
  Rng rng(41);
  Conv2d conv("c", {.in_c = 3, .out_c = 4, .kernel = 3}, rng);
  Rng rng2(41);
  Conv2d fresh("c", {.in_c = 3, .out_c = 4, .kernel = 3}, rng2);
  for (const auto& [h, w, batch] :
       {std::tuple{8, 8, 4}, {12, 10, 2}, {6, 14, 8}, {8, 8, 4}}) {
    Rng xrng(static_cast<std::uint64_t>(h * 100 + w));
    const Tensor x = Tensor::Uniform(TensorShape::NCHW(batch, 3, h, w),
                                     xrng, -1.0f, 1.0f);
    const Tensor got = conv.Forward(x, false);
    const Tensor want = fresh.Forward(x, false);
    ASSERT_EQ(got.shape(), want.shape());
    EXPECT_EQ(0, std::memcmp(got.Raw(), want.Raw(),
                             static_cast<std::size_t>(got.NumElements()) *
                                 sizeof(float)))
        << h << "x" << w;
  }
}

// Default "same" padding must account for dilation: a 3x3 rate-2/4 conv
// with pad = -1 keeps the spatial map (the ASPP configuration).
TEST(ConvEngine, SamePadDefaultScalesWithDilation) {
  Rng rng(43);
  for (const std::int64_t d : {1, 2, 4}) {
    Conv2d conv("a", {.in_c = 2, .out_c = 2, .kernel = 3, .dilation = d},
                rng);
    EXPECT_EQ(conv.options().pad, d) << "dilation " << d;
    const auto out = conv.OutputShape(TensorShape::NCHW(1, 2, 12, 16));
    EXPECT_EQ(out, TensorShape::NCHW(1, 2, 12, 16)) << "dilation " << d;
  }
  Conv2d k5("k5", {.in_c = 2, .out_c = 2, .kernel = 5, .dilation = 3}, rng);
  EXPECT_EQ(k5.options().pad, 6);
}

// k == 0 with beta == 0 must overwrite C (BLAS semantics), even when C
// holds NaN/Inf garbage from an uninitialised or reused buffer.
TEST(GemmEdge, ZeroKBetaZeroOverwritesGarbage) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> c{nan, inf, -inf, 3.5f};
  Gemm(false, false, 2, 2, 0, 1.0f, nullptr, nullptr, 0.0f, c.data());
  for (const float v : c) EXPECT_EQ(v, 0.0f);

  std::vector<float> c2{1.0f, 2.0f, 3.0f, 4.0f};
  Gemm(false, false, 2, 2, 0, 1.0f, nullptr, nullptr, 0.5f, c2.data());
  EXPECT_EQ(c2, (std::vector<float>{0.5f, 1.0f, 1.5f, 2.0f}));

  std::vector<float> c3{1.0f, 2.0f, 3.0f, 4.0f};
  Gemm(false, false, 2, 2, 0, 1.0f, nullptr, nullptr, 1.0f, c3.data());
  EXPECT_EQ(c3, (std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f}));
}

// Wide-N GEMM exercises the grain clamp (one kBlockM panel minimum per
// task); validate against a naive reference.
TEST(GemmEdge, WideNMatchesNaiveReference) {
  const std::int64_t m = 3, n = 2048, k = 5;
  Rng rng(47);
  const Tensor a = Tensor::Uniform(TensorShape{m, k}, rng, -1.0f, 1.0f);
  const Tensor b = Tensor::Uniform(TensorShape{k, n}, rng, -1.0f, 1.0f);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  Gemm(false, false, m, n, k, 1.0f, a.Raw(), b.Raw(), 0.0f, c.data());
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; j += 97) {
      double want = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        want += static_cast<double>(a[static_cast<std::size_t>(i * k + p)]) *
                b[static_cast<std::size_t>(p * n + j)];
      }
      EXPECT_NEAR(c[static_cast<std::size_t>(i * n + j)], want, 1e-4)
          << i << "," << j;
    }
  }
}

// A conv issued while the engine is batch-parallel must keep its nested
// GEMMs inline: InParallelRegion is observable from inside a shard when
// the pool actually forked.
TEST(ConvEngine, NestedParallelForFromShardRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> nested_inline{0};
  pool.ParallelFor(
      0, 8,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_TRUE(ThreadPool::InParallelRegion());
        // A nested call must run inline over the full range, exactly once.
        int calls = 0;
        std::size_t seen = 0;
        pool.ParallelFor(
            0, 1000,
            [&](std::size_t b, std::size_t e) {
              ++calls;
              seen += e - b;
            },
            /*grain=*/1);
        EXPECT_EQ(calls, 1);
        EXPECT_EQ(seen, 1000u);
        nested_inline.fetch_add(static_cast<int>(hi - lo));
      },
      /*grain=*/1);
  EXPECT_EQ(nested_inline.load(), 8);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

}  // namespace
}  // namespace exaclim
