#include <gtest/gtest.h>

#include "netsim/machine.hpp"
#include "netsim/roofline.hpp"
#include "netsim/scale.hpp"

namespace exaclim {
namespace {

ScaleOptions SummitDeepLabFP32(int lag = 1) {
  ScaleOptions o;
  o.machine = MachineModel::Summit();
  o.spec = PaperDeepLabSpec(16);
  o.precision = Precision::kFP32;
  o.local_batch = 1;
  o.lag = lag;
  // Anchor to the paper's measured Fig 2 single-GPU values.
  o.anchor_samples_per_sec = 0.87;
  o.anchor_tf_per_sample = 14.41;
  return o;
}

ScaleOptions PizDaintTiramisuFP32() {
  ScaleOptions o;
  o.machine = MachineModel::PizDaint();
  Tiramisu::Config cfg = Tiramisu::Config::Modified();
  cfg.in_channels = 4;
  o.spec = BuildTiramisuSpec(cfg, 768, 1152);
  o.precision = Precision::kFP32;
  o.local_batch = 1;
  o.lag = 0;
  o.hybrid_allreduce = false;
  o.anchor_samples_per_sec = 1.20;
  o.anchor_tf_per_sample = 3.703;
  return o;
}

// ------------------------------------------------------------ Machine ---

TEST(MachineModel, SummitGeometry) {
  const MachineModel m = MachineModel::Summit();
  EXPECT_EQ(m.max_nodes, 4608);
  EXPECT_EQ(m.gpus_per_node, 6);
  EXPECT_EQ(m.MaxGpus(), 27648);
  EXPECT_DOUBLE_EQ(m.gpu.peak_fp16, 125e12);  // Tensor Cores (Sec VI-A2)
  EXPECT_DOUBLE_EQ(m.gpu.peak_fp16 * m.gpus_per_node, 750e12);  // 750 TF/node
}

TEST(MachineModel, PizDaintGeometry) {
  const MachineModel m = MachineModel::PizDaint();
  EXPECT_EQ(m.max_nodes, 5320);
  EXPECT_EQ(m.gpus_per_node, 1);
  EXPECT_EQ(m.gpu.peak_fp16, m.gpu.peak_fp32);  // no Tensor Cores
}

// ----------------------------------------------------------- Roofline ---

TEST(Roofline, ConvCategoryIsMathBound) {
  // A compute-heavy conv category should be limited by math throughput.
  CategoryCost cost{.kernels = 1, .flops = 1e12, .bytes = 1e9};
  const GpuModel v100 = MachineModel::Summit().gpu;
  RooflineEfficiencies eff;
  const double t = CategoryTime(cost, KernelCategory::kFwdConv, v100,
                                Precision::kFP32, eff, 150e9);
  EXPECT_NEAR(t, 1e12 / (15.7e12 * eff.conv_math_fp32), 1e-6);
}

TEST(Roofline, PointwiseCategoryIsMemoryBound) {
  CategoryCost cost{.kernels = 1, .flops = 1e9, .bytes = 10e9};
  const GpuModel v100 = MachineModel::Summit().gpu;
  RooflineEfficiencies eff;
  const double t = CategoryTime(cost, KernelCategory::kFwdPointwise, v100,
                                Precision::kFP32, eff, 150e9);
  EXPECT_NEAR(t, 10e9 / (900e9 * eff.pointwise_mem), 1e-6);
}

TEST(Roofline, EmptyCategoryCostsNothing) {
  const GpuModel v100 = MachineModel::Summit().gpu;
  EXPECT_EQ(CategoryTime({}, KernelCategory::kOptimizer, v100,
                         Precision::kFP32, {}, 0.0),
            0.0);
}

TEST(Roofline, Fig2RegimeSingleGpu) {
  // Our computed single-GPU table must land in the paper's Fig 2 regime:
  // FP32 achieves a much higher fraction of peak than FP16 (Tensor Core
  // kernels go memory-bound), and DeepLabv3+ utilises the GPU better
  // than Tiramisu.
  const MachineModel summit = MachineModel::Summit();
  const auto t32 =
      AnalyzeSingleGpu(PaperTiramisuSpec(16), summit, Precision::kFP32, 1);
  const auto t16 =
      AnalyzeSingleGpu(PaperTiramisuSpec(16), summit, Precision::kFP16, 2);
  const auto d32 =
      AnalyzeSingleGpu(PaperDeepLabSpec(16), summit, Precision::kFP32, 1);
  const auto d16 =
      AnalyzeSingleGpu(PaperDeepLabSpec(16), summit, Precision::kFP16, 2);

  EXPECT_GT(d32.fraction_of_peak, t32.fraction_of_peak);
  EXPECT_GT(t32.fraction_of_peak, t16.fraction_of_peak);
  EXPECT_GT(d32.fraction_of_peak, d16.fraction_of_peak);
  // Paper: FP32 51-80% of peak, FP16 17-31%.
  EXPECT_GT(d32.fraction_of_peak, 0.35);
  EXPECT_LT(d32.fraction_of_peak, 0.90);
  EXPECT_GT(t16.fraction_of_peak, 0.03);
  EXPECT_LT(t16.fraction_of_peak, 0.40);
  // FP16 is still faster in absolute samples/s.
  EXPECT_GT(t16.samples_per_sec, t32.samples_per_sec);
  EXPECT_GT(d16.samples_per_sec, d32.samples_per_sec);
}

TEST(Roofline, StepBreakdownSumsToTotal) {
  const TrainingCost cost =
      AnalyzeTraining(PaperDeepLabSpec(16), Precision::kFP32, 1);
  const auto b = SingleGpuStepTime(cost, MachineModel::Summit(),
                                   Precision::kFP32);
  double sum = 0;
  for (double s : b.seconds) sum += s;
  EXPECT_NEAR(sum, b.total, 1e-9);
  EXPECT_GT(b.at(KernelCategory::kFwdConv), 0.0);
  EXPECT_GT(b.ComputeOnly(), 0.0);
  EXPECT_LT(b.ComputeOnly(), b.total);
}

// ------------------------------------------------------------- Scale ----

TEST(ScaleSim, SummitEfficiencyMatchesPaperEndpoint) {
  // Fig 4b: DeepLabv3+ at 27360 GPUs, 90.7% parallel efficiency (both
  // precisions, lag 1).
  ScaleSimulator fp32(SummitDeepLabFP32());
  EXPECT_NEAR(fp32.Simulate(27360).efficiency, 0.907, 0.015);

  ScaleOptions o16 = SummitDeepLabFP32();
  o16.precision = Precision::kFP16;
  o16.local_batch = 2;
  o16.anchor_samples_per_sec = 2.67;
  ScaleSimulator fp16(o16);
  const auto p = fp16.Simulate(27360);
  EXPECT_NEAR(p.efficiency, 0.907, 0.015);
  // Sustained FP16 performance in the paper's regime (999 PF/s).
  EXPECT_GT(p.pflops_sustained, 850.0);
  EXPECT_LT(p.pflops_sustained, 1100.0);
}

TEST(ScaleSim, PizDaintEfficiencyMatchesPaperCurve) {
  ScaleSimulator sim(PizDaintTiramisuFP32());
  EXPECT_NEAR(sim.Simulate(2048).efficiency, 0.834, 0.02);
  EXPECT_NEAR(sim.Simulate(5300).efficiency, 0.790, 0.02);
  // Sustained PF/s at full machine: order of the paper's 21.0 PF/s.
  EXPECT_GT(sim.Simulate(5300).pflops_sustained, 14.0);
  EXPECT_LT(sim.Simulate(5300).pflops_sustained, 25.0);
}

TEST(ScaleSim, EfficiencyDecreasesMonotonically) {
  ScaleSimulator sim(SummitDeepLabFP32());
  double prev = 1.1;
  for (int g : {1, 6, 96, 768, 6144, 27360}) {
    const double eff = sim.Simulate(g).efficiency;
    EXPECT_LE(eff, prev + 1e-12) << "g=" << g;
    prev = eff;
  }
}

TEST(ScaleSim, ThroughputScalesNearLinearly) {
  ScaleSimulator sim(SummitDeepLabFP32());
  const auto p1 = sim.Simulate(96);
  const auto p2 = sim.Simulate(192);
  EXPECT_GT(p2.images_per_sec / p1.images_per_sec, 1.9);
  EXPECT_LT(p2.images_per_sec / p1.images_per_sec, 2.05);
}

TEST(ScaleSim, LagImprovesLargeScaleThroughput) {
  // Sec V-B4 / Fig 4: the best results had gradient lag enabled —
  // it hides the exposed all-reduce and control latency.
  ScaleOptions lag0 = SummitDeepLabFP32(0);
  ScaleOptions lag1 = SummitDeepLabFP32(1);
  const auto p0 = ScaleSimulator(lag0).Simulate(27360);
  const auto p1 = ScaleSimulator(lag1).Simulate(27360);
  EXPECT_GT(p1.images_per_sec, p0.images_per_sec);
  EXPECT_GT(p0.exposed_comm_seconds, p1.exposed_comm_seconds);
}

TEST(ScaleSim, FlatControlPlaneCollapsesAtScale) {
  // The Sec V-A3 motivation: rank-0 coordination handles millions of
  // messages per second at large scale, destroying parallel efficiency,
  // while the hierarchical tree stays cheap.
  ScaleOptions flat = SummitDeepLabFP32();
  flat.hierarchical_control = false;
  flat.lag = 0;
  ScaleOptions hier = SummitDeepLabFP32();
  hier.lag = 0;
  ScaleSimulator flat_sim(flat);
  ScaleSimulator hier_sim(hier);

  // At 1024 GPUs Horovod was known to still work...
  EXPECT_GT(flat_sim.Simulate(1024).efficiency, 0.75);
  // ...but at 27360 the flat controller dominates the step.
  const auto flat_point = flat_sim.Simulate(27360);
  const auto hier_point = hier_sim.Simulate(27360);
  EXPECT_LT(flat_point.efficiency, 0.55);
  EXPECT_GT(hier_point.efficiency, 0.85);
  EXPECT_GT(flat_point.control_seconds, hier_point.control_seconds * 50);
}

TEST(ScaleSim, ControlRadixInsensitiveBetween2And8) {
  // Sec V-A3: "no measurable performance difference for r between 2 and
  // 8".
  double base = 0.0;
  for (int radix : {2, 4, 8}) {
    ScaleOptions o = SummitDeepLabFP32();
    o.control_radix = radix;
    const double eff = ScaleSimulator(o).Simulate(27360).efficiency;
    if (base == 0.0) base = eff;
    EXPECT_NEAR(eff, base, 0.005) << "radix " << radix;
  }
}

TEST(ScaleSim, HybridAllreduceBeatsFlatRingOnSummit) {
  ScaleOptions hybrid = SummitDeepLabFP32(0);
  ScaleOptions flat = SummitDeepLabFP32(0);
  flat.hybrid_allreduce = false;
  const int gpus = 27360;
  ScaleSimulator h(hybrid), f(flat);
  EXPECT_LT(h.AllreduceSeconds(gpus), f.AllreduceSeconds(gpus));
  EXPECT_GT(h.Simulate(gpus).images_per_sec,
            f.Simulate(gpus).images_per_sec);
}

TEST(ScaleSim, UnstagedInputHitsFilesystemWall) {
  // Fig 5: on Piz Daint without staging, throughput caps near the
  // 112 GB/s Lustre limit (~2000 images/s) with a 9-10% efficiency
  // penalty at 2048 GPUs.
  ScaleOptions staged = PizDaintTiramisuFP32();
  ScaleOptions unstaged = PizDaintTiramisuFP32();
  unstaged.staged_input = false;
  ScaleSimulator s(staged), u(unstaged);
  // Matched at low node counts...
  EXPECT_NEAR(u.Simulate(256).images_per_sec,
              s.Simulate(256).images_per_sec, 1.0);
  // ...diverging near the filesystem limit.
  const double staged_2048 = s.Simulate(2048).images_per_sec;
  const double unstaged_2048 = u.Simulate(2048).images_per_sec;
  EXPECT_LT(unstaged_2048, staged_2048 * 0.95);
  const double penalty =
      s.Simulate(2048).efficiency - u.Simulate(2048).efficiency;
  EXPECT_GT(penalty, 0.05);
  EXPECT_LT(penalty, 0.14);  // paper: 83.4% -> 75.8% (9.5% penalty)
}

TEST(ScaleSim, RooflineModeWorksWithoutAnchors) {
  ScaleOptions o = SummitDeepLabFP32();
  o.anchor_samples_per_sec = 0.0;
  o.anchor_tf_per_sample = 0.0;
  ScaleSimulator sim(o);
  const auto p = sim.Simulate(1536);
  EXPECT_GT(p.images_per_sec, 0.0);
  EXPECT_GT(p.pflops_sustained, 0.0);
  EXPECT_GT(p.efficiency, 0.85);
}

TEST(ScaleSim, GradientBytesFollowPrecision) {
  ScaleOptions o32 = SummitDeepLabFP32();
  ScaleOptions o16 = SummitDeepLabFP32();
  o16.precision = Precision::kFP16;
  EXPECT_NEAR(ScaleSimulator(o32).gradient_bytes(),
              2.0 * ScaleSimulator(o16).gradient_bytes(), 1.0);
}

}  // namespace
}  // namespace exaclim
