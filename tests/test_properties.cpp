// Randomised property tests across the substrates (seeded, so
// reproducible): collectives against brute-force sums at fuzzed sizes,
// binary16 arithmetic against double-precision reference rounding,
// model shape algebra across geometry sweeps, and loss-gradient
// finite-difference checks across weighting schemes.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "comm/collectives.hpp"
#include "common/half.hpp"
#include "hvd/control_plane.hpp"
#include "hvd/hybrid.hpp"
#include "flops/opspec.hpp"
#include "models/deeplab.hpp"
#include "models/tiramisu.hpp"
#include "nn/loss.hpp"

namespace exaclim {
namespace {

// --------------------------------------------------- Collective fuzz ----

TEST(PropertyCollectives, FuzzedAllreduceMatchesBruteForce) {
  Rng fuzz(2024);
  for (int trial = 0; trial < 12; ++trial) {
    const int ranks = static_cast<int>(fuzz.Int(1, 9));
    const auto len = static_cast<std::size_t>(fuzz.Int(1, 300));
    const auto algo = static_cast<AllreduceAlgo>(fuzz.Int(0, 2));

    // Brute-force expected sums.
    std::vector<std::vector<float>> inputs(
        static_cast<std::size_t>(ranks));
    std::vector<float> expected(len, 0.0f);
    for (int r = 0; r < ranks; ++r) {
      Rng rng(100 * trial + r);
      auto& in = inputs[static_cast<std::size_t>(r)];
      in.resize(len);
      for (std::size_t i = 0; i < len; ++i) {
        in[i] = rng.Uniform(-2.0f, 2.0f);
        expected[i] += in[i];
      }
    }

    SimWorld world(ranks);
    world.Run([&](Communicator& comm) {
      auto data = inputs[static_cast<std::size_t>(comm.rank())];
      Allreduce(comm, data, algo);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_NEAR(data[i], expected[i], 1e-4f)
            << "trial " << trial << " ranks " << ranks << " algo "
            << ToString(algo);
      }
    });
  }
}

TEST(PropertyCollectives, FuzzedHybridMatchesBruteForce) {
  Rng fuzz(77);
  for (int trial = 0; trial < 8; ++trial) {
    const int rpn = static_cast<int>(fuzz.Int(1, 4));
    const int nodes = static_cast<int>(fuzz.Int(1, 3));
    const int ranks = rpn * nodes;
    const auto len = static_cast<std::size_t>(fuzz.Int(1, 200));
    const int mpi_ranks = static_cast<int>(fuzz.Int(1, rpn));

    std::vector<float> expected(len, 0.0f);
    std::vector<std::vector<float>> inputs(
        static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      Rng rng(9000 + 64 * trial + r);
      auto& in = inputs[static_cast<std::size_t>(r)];
      in.resize(len);
      for (std::size_t i = 0; i < len; ++i) {
        in[i] = rng.Uniform(-1.0f, 1.0f);
        expected[i] += in[i];
      }
    }
    SimWorld world(ranks);
    world.Run([&](Communicator& comm) {
      auto data = inputs[static_cast<std::size_t>(comm.rank())];
      HybridAllreduceOptions opts;
      opts.topology.ranks_per_node = rpn;
      opts.mpi_ranks_per_node = mpi_ranks;
      opts.inter_node_tree = trial % 2 == 0;
      HybridAllreduce(comm, data, opts);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_NEAR(data[i], expected[i], 1e-4f)
            << "trial " << trial << " rpn " << rpn << " nodes " << nodes;
      }
    });
  }
}

// ------------------------------------------------------- Half fuzz ------

TEST(PropertyHalf, ConversionMatchesDoubleRoundingReference) {
  // For random floats, converting through our binary16 must equal the
  // correctly-rounded (nearest-even) value computed via long-double
  // arithmetic on the representable neighbours.
  Rng rng(555);
  for (int trial = 0; trial < 20000; ++trial) {
    const float v = rng.Uniform(-70000.0f, 70000.0f);
    const float q = Half(v).ToFloat();
    if (!Half(v).IsFinite()) {
      EXPECT_GT(std::fabs(v), 65504.0f);
      continue;
    }
    // q must be a representable binary16 value...
    EXPECT_EQ(Half(q).bits(), Half(v).bits());
    // ...and no other representable value may be strictly closer.
    const float ulp_up = Half::FromBits(
        static_cast<std::uint16_t>(Half(q).bits() + 1)).ToFloat();
    const float ulp_down = Half::FromBits(
        static_cast<std::uint16_t>(Half(q).bits() - 1)).ToFloat();
    const double err = std::fabs(static_cast<double>(q) - v);
    if (std::isfinite(ulp_up)) {
      EXPECT_LE(err, std::fabs(static_cast<double>(ulp_up) - v) + 1e-12)
          << "v=" << v;
    }
    if (std::isfinite(ulp_down)) {
      EXPECT_LE(err, std::fabs(static_cast<double>(ulp_down) - v) + 1e-12)
          << "v=" << v;
    }
  }
}

TEST(PropertyHalf, ArithmeticIsFloatThenRound) {
  // Our Half ops are defined as float arithmetic + round: verify the
  // composition explicitly over random pairs.
  Rng rng(556);
  for (int trial = 0; trial < 5000; ++trial) {
    const Half a(rng.Uniform(-100.0f, 100.0f));
    const Half b(rng.Uniform(-100.0f, 100.0f));
    EXPECT_EQ((a + b).bits(), Half(a.ToFloat() + b.ToFloat()).bits());
    EXPECT_EQ((a * b).bits(), Half(a.ToFloat() * b.ToFloat()).bits());
  }
}

// --------------------------------------------------- Model geometry -----

class TiramisuGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TiramisuGeometry, OutputAlwaysPerPixelClassMap) {
  const auto [h_blocks, w_blocks] = GetParam();
  Tiramisu::Config cfg = Tiramisu::Config::Downscaled(4);
  const std::int64_t div = std::int64_t{1} << cfg.down_layers.size();
  const std::int64_t h = div * h_blocks, w = div * w_blocks;
  Rng rng(1);
  Tiramisu net(cfg, rng);
  const auto out = net.OutputShape(TensorShape::NCHW(2, 4, h, w));
  EXPECT_EQ(out, TensorShape::NCHW(2, 3, h, w));
  // Spec builder agrees for every geometry.
  const ArchSpec spec = BuildTiramisuSpec(cfg, h, w);
  EXPECT_EQ(spec.ops.back().out_h, h);
  EXPECT_EQ(spec.ops.back().out_w, w);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TiramisuGeometry,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(2, 4, 7)));

class DeepLabGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DeepLabGeometry, OutputAlwaysPerPixelClassMap) {
  const auto [h_blocks, w_blocks] = GetParam();
  const std::int64_t h = 8 * h_blocks, w = 8 * w_blocks;
  auto cfg = DeepLabV3Plus::Config::Downscaled(4);
  Rng rng(1);
  DeepLabV3Plus net(cfg, rng);
  const auto out = net.OutputShape(TensorShape::NCHW(1, 4, h, w));
  EXPECT_EQ(out, TensorShape::NCHW(1, 3, h, w));
  const ArchSpec spec = BuildDeepLabSpec(cfg, h, w);
  EXPECT_EQ(spec.ops.back().out_h, h);
  EXPECT_EQ(spec.ops.back().out_w, w);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeepLabGeometry,
                         ::testing::Combine(::testing::Values(3, 4, 6),
                                            ::testing::Values(3, 5, 8)));

// ----------------------------------------------------- Loss property ----

class LossWeightingSchemes
    : public ::testing::TestWithParam<WeightingScheme> {};

TEST_P(LossWeightingSchemes, GradientMatchesFiniteDifference) {
  const WeightingScheme scheme = GetParam();
  const std::array<double, 3> freq{0.9, 0.08, 0.02};
  SegmentationLossOptions opts;
  std::vector<float> weights;  // named: class_weights is a non-owning span
  if (scheme != WeightingScheme::kNone) {
    weights = MakeClassWeights(freq, scheme);
    opts.class_weights = weights;
  }
  Rng lrng(42);
  Tensor logits =
      Tensor::Uniform(TensorShape::NCHW(1, 3, 4, 4), lrng, -2.0f, 2.0f);
  std::vector<std::uint8_t> labels(16);
  Rng rng(43);
  for (auto& l : labels) l = static_cast<std::uint8_t>(rng.Int(0, 2));

  const auto res = WeightedSoftmaxCrossEntropy(logits, labels, opts);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.NumElements(); i += 5) {
    const auto idx = static_cast<std::size_t>(i);
    const float saved = logits[idx];
    logits[idx] = saved + static_cast<float>(eps);
    const double up = WeightedSoftmaxCrossEntropy(logits, labels, opts).loss;
    logits[idx] = saved - static_cast<float>(eps);
    const double down =
        WeightedSoftmaxCrossEntropy(logits, labels, opts).loss;
    logits[idx] = saved;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(res.grad_logits[idx], numeric,
                1e-3 * std::max(1.0, std::fabs(numeric)))
        << ToString(scheme) << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, LossWeightingSchemes,
                         ::testing::Values(WeightingScheme::kNone,
                                           WeightingScheme::kInverse,
                                           WeightingScheme::kInverseSqrt));

// ------------------------------------------------- ControlPlane fuzz ----

TEST(PropertyControlPlane, FuzzedConfigurationsAlwaysAgree) {
  Rng fuzz(31337);
  for (int trial = 0; trial < 10; ++trial) {
    const int ranks = static_cast<int>(fuzz.Int(2, 17));
    const int tensors = static_cast<int>(fuzz.Int(1, 40));
    const bool hierarchical = fuzz.Bernoulli(0.5);
    const int radix = static_cast<int>(fuzz.Int(1, 5));

    SimWorld world(ranks);
    std::vector<std::vector<int>> orders(static_cast<std::size_t>(ranks));
    world.Run([&](Communicator& comm) {
      auto plane = MakeControlPlane(hierarchical, radix);
      std::vector<int> ready(static_cast<std::size_t>(tensors));
      for (int i = 0; i < tensors; ++i) {
        ready[static_cast<std::size_t>(i)] = i;
      }
      Rng shuffle(1000 * trial + comm.rank());
      std::shuffle(ready.begin(), ready.end(), shuffle.engine());
      orders[static_cast<std::size_t>(comm.rank())] =
          plane->NegotiateOrder(comm, ready);
    });
    for (int r = 1; r < ranks; ++r) {
      ASSERT_EQ(orders[static_cast<std::size_t>(r)], orders[0])
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace exaclim
