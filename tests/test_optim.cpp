#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "optim/lag.hpp"
#include "optim/larc.hpp"
#include "optim/loss_scaler.hpp"
#include "optim/optimizer.hpp"
#include "optim/schedule.hpp"

namespace exaclim {
namespace {

// Simple quadratic objective f(w) = 0.5 * ||w - target||^2 whose gradient
// is (w - target); any sane optimizer must converge to target.
struct Quadratic {
  Param param;
  Tensor target;

  Quadratic(std::int64_t n, std::uint64_t seed)
      : param("w", Tensor::Zeros(TensorShape{n})),
        target(TensorShape{n}) {
    Rng rng(seed);
    for (std::int64_t i = 0; i < n; ++i) {
      target[static_cast<std::size_t>(i)] = rng.Uniform(-2.0f, 2.0f);
    }
  }

  void ComputeGrad() {
    for (std::int64_t i = 0; i < param.value.NumElements(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      param.grad[idx] = param.value[idx] - target[idx];
    }
  }

  float Distance() const {
    double acc = 0;
    for (std::int64_t i = 0; i < param.value.NumElements(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const double d = param.value[idx] - target[idx];
      acc += d * d;
    }
    return static_cast<float>(std::sqrt(acc));
  }
};

TEST(SGD, ConvergesOnQuadratic) {
  Quadratic q(16, 1);
  SGD opt({&q.param}, {.lr = 0.2f});
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    q.ComputeGrad();
    opt.Step();
  }
  EXPECT_LT(q.Distance(), 1e-4f);
}

TEST(SGD, MomentumAcceleratesConvergence) {
  Quadratic plain(16, 2), heavy(16, 2);
  SGD opt_plain({&plain.param}, {.lr = 0.02f});
  SGD opt_heavy({&heavy.param}, {.lr = 0.02f, .momentum = 0.9f});
  for (int i = 0; i < 40; ++i) {
    plain.ComputeGrad();
    opt_plain.Step();
    heavy.ComputeGrad();
    opt_heavy.Step();
  }
  EXPECT_LT(heavy.Distance(), plain.Distance());
}

TEST(SGD, WeightDecayShrinksWeights) {
  Param p("w", Tensor::Full(TensorShape{4}, 1.0f));
  SGD opt({&p}, {.lr = 0.1f, .weight_decay = 0.5f});
  p.grad.SetZero();
  opt.Step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Quadratic q(16, 3);
  Adam opt({&q.param}, {.lr = 0.1f});
  for (int i = 0; i < 300; ++i) {
    q.ComputeGrad();
    opt.Step();
  }
  EXPECT_LT(q.Distance(), 1e-2f);
  EXPECT_EQ(opt.step_count(), 300);
}

TEST(Adam, FirstStepSizeIsLearningRate) {
  // With bias correction, the first Adam update has magnitude ~lr
  // regardless of gradient scale.
  for (const float gscale : {1e-4f, 1.0f, 1e4f}) {
    Param p("w", Tensor::Zeros(TensorShape{1}));
    Adam opt({&p}, {.lr = 0.01f});
    p.grad[0] = gscale;
    opt.Step();
    EXPECT_NEAR(p.value[0], -0.01f, 1e-4f) << "gscale=" << gscale;
  }
}

TEST(Optimizer, ZeroGradClears) {
  Param p("w", Tensor::Zeros(TensorShape{3}));
  SGD opt({&p}, {.lr = 0.1f});
  p.grad.Fill(5.0f);
  opt.ZeroGrad();
  EXPECT_EQ(p.grad.Norm(), 0.0f);
}

TEST(Optimizer, UnscaleGradients) {
  Param p("w", Tensor::Zeros(TensorShape{2}));
  SGD opt({&p}, {.lr = 0.1f});
  p.grad.Fill(512.0f);
  opt.UnscaleGradients(256.0f);
  EXPECT_FLOAT_EQ(p.grad[0], 2.0f);
}

TEST(Optimizer, DetectsNonFiniteGradient) {
  Param p("w", Tensor::Zeros(TensorShape{2}));
  SGD opt({&p}, {.lr = 0.1f});
  p.grad[0] = 1.0f;
  EXPECT_FALSE(opt.HasNonFiniteGradient());
  p.grad[1] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(opt.HasNonFiniteGradient());
}

// ---------------------------------------------------------------- LARC --

TEST(LARC, ClipsLocalRateToGlobal) {
  // Large weights + tiny gradients: LARC rate >> lr, clip keeps it at lr.
  Param p("w", Tensor::Full(TensorShape{4}, 100.0f));
  auto inner = std::make_unique<SGD>(std::vector<Param*>{&p},
                                     SGD::Options{.lr = 0.1f});
  LARC larc(std::move(inner), {});
  p.grad.Fill(1e-6f);
  larc.Step();
  EXPECT_FLOAT_EQ(larc.last_multiplier(0), 1.0f);
}

TEST(LARC, ShrinksUpdateWhenGradientsLarge) {
  // Gradient norm huge relative to weights: LARC scales the update down
  // to trust * ||w|| / ||g|| of the raw step.
  Param p("w", Tensor::Full(TensorShape{4}, 1.0f));
  auto inner = std::make_unique<SGD>(std::vector<Param*>{&p},
                                     SGD::Options{.lr = 1.0f});
  LARC larc(std::move(inner), {.trust_coefficient = 1e-3f, .epsilon = 1e-8f,
                               .clip = true});
  p.grad.Fill(1000.0f);
  const float before = p.value[0];
  larc.Step();
  const float update = before - p.value[0];
  // Expected: lr * multiplier * g = larc_rate * g,
  // larc_rate = 1e-3 * 2 / 2000 = 1e-6 -> update = 1e-3.
  EXPECT_NEAR(update, 1e-3f, 1e-5f);
}

TEST(LARC, StabilisesLargeLRTraining) {
  // With an absurd global LR, plain SGD diverges on the quadratic while
  // LARC-wrapped SGD does not (the large-batch stability role of
  // Sec V-B2).
  Quadratic plain(8, 4), guarded(8, 4);
  SGD diverging({&plain.param}, {.lr = 5.0f});
  LARC larc(std::make_unique<SGD>(std::vector<Param*>{&guarded.param},
                                  SGD::Options{.lr = 5.0f}),
            {.trust_coefficient = 0.1f, .epsilon = 1e-8f, .clip = true});
  for (int i = 0; i < 50; ++i) {
    plain.ComputeGrad();
    diverging.Step();
    guarded.ComputeGrad();
    larc.Step();
  }
  EXPECT_TRUE(std::isnan(plain.Distance()) || plain.Distance() > 1e3f);
  EXPECT_LT(guarded.Distance(), 10.0f);
  EXPECT_TRUE(guarded.param.value.AllFinite());
}

TEST(LARC, NoClipModeIsLARS) {
  // clip=false reproduces LARS: the local rate may exceed the global
  // rate (multiplier > 1), which is why LARS needs warm-up; LARC's clip
  // caps the multiplier at 1 (Sec V-B2).
  for (const bool clip : {false, true}) {
    Param p("w", Tensor::Full(TensorShape{4}, 10.0f));
    LARC larc(std::make_unique<SGD>(std::vector<Param*>{&p},
                                    SGD::Options{.lr = 1e-4f}),
              {.trust_coefficient = 0.1f, .epsilon = 1e-8f, .clip = clip});
    p.grad.Fill(0.01f);  // tiny gradients: larc_rate >> lr
    larc.Step();
    if (clip) {
      EXPECT_FLOAT_EQ(larc.last_multiplier(0), 1.0f);
    } else {
      EXPECT_GT(larc.last_multiplier(0), 100.0f);
    }
  }
}

TEST(LARC, ZeroGradientIsNoop) {
  Param p("w", Tensor::Full(TensorShape{2}, 3.0f));
  LARC larc(std::make_unique<SGD>(std::vector<Param*>{&p},
                                  SGD::Options{.lr = 0.1f}),
            {});
  p.grad.SetZero();
  larc.Step();
  EXPECT_FLOAT_EQ(p.value[0], 3.0f);
}

// --------------------------------------------------------- GradientLag --

TEST(GradientLag, LagZeroIsPassThrough) {
  Param p("w", Tensor::Zeros(TensorShape{1}));
  GradientLag lag(std::make_unique<SGD>(std::vector<Param*>{&p},
                                        SGD::Options{.lr = 1.0f}),
                  0);
  p.grad[0] = 2.0f;
  lag.Step();
  EXPECT_FLOAT_EQ(p.value[0], -2.0f);
}

TEST(GradientLag, LagOneAppliesPreviousGradient) {
  Param p("w", Tensor::Zeros(TensorShape{1}));
  GradientLag lag(std::make_unique<SGD>(std::vector<Param*>{&p},
                                        SGD::Options{.lr = 1.0f}),
                  1);
  // Step 1: gradient 3 buffered, no update applied.
  p.grad[0] = 3.0f;
  lag.Step();
  EXPECT_FLOAT_EQ(p.value[0], 0.0f);
  EXPECT_EQ(lag.warmup_steps_skipped(), 1);
  // Step 2: gradient 5 buffered, update applies the lagged 3.
  p.grad[0] = 5.0f;
  lag.Step();
  EXPECT_FLOAT_EQ(p.value[0], -3.0f);
  // Step 3: applies the 5.
  p.grad[0] = 0.0f;
  lag.Step();
  EXPECT_FLOAT_EQ(p.value[0], -8.0f);
}

TEST(GradientLag, LagTwoRingBuffer) {
  Param p("w", Tensor::Zeros(TensorShape{1}));
  GradientLag lag(std::make_unique<SGD>(std::vector<Param*>{&p},
                                        SGD::Options{.lr = 1.0f}),
                  2);
  for (float g : {1.0f, 2.0f, 3.0f, 4.0f}) {
    p.grad[0] = g;
    lag.Step();
  }
  // Applied gradients: steps 3 and 4 apply g1=1 and g2=2.
  EXPECT_FLOAT_EQ(p.value[0], -3.0f);
  EXPECT_EQ(lag.warmup_steps_skipped(), 2);
}

TEST(GradientLag, StillConvergesOnQuadratic) {
  // Sec V-B4: lagging changes the optimizer but with a modest LR the
  // training still converges.
  Quadratic q(8, 5);
  GradientLag lag(std::make_unique<SGD>(std::vector<Param*>{&q.param},
                                        SGD::Options{.lr = 0.1f}),
                  1);
  for (int i = 0; i < 200; ++i) {
    q.ComputeGrad();
    lag.Step();
  }
  EXPECT_LT(q.Distance(), 1e-3f);
}

// ---------------------------------------------------------- LRSchedule --

TEST(LRSchedule, WarmupRampsLinearly) {
  LRSchedule sched({.base_lr = 1.0f, .warmup_steps = 10});
  EXPECT_NEAR(sched.At(0), 0.1f, 1e-6f);
  EXPECT_NEAR(sched.At(4), 0.5f, 1e-6f);
  EXPECT_NEAR(sched.At(9), 1.0f, 1e-6f);
  EXPECT_NEAR(sched.At(100), 1.0f, 1e-6f);  // constant after warm-up
}

TEST(LRSchedule, PolyDecayReachesEndFraction) {
  LRSchedule sched({.base_lr = 1.0f, .warmup_steps = 0, .total_steps = 100,
                    .end_lr_fraction = 0.1f});
  EXPECT_NEAR(sched.At(0), 1.0f, 1e-5f);
  EXPECT_NEAR(sched.At(50), 0.55f, 1e-5f);
  EXPECT_NEAR(sched.At(100), 0.1f, 1e-5f);
  EXPECT_NEAR(sched.At(500), 0.1f, 1e-5f);
}

TEST(ScaleLearningRate, LinearAndPaperSettings) {
  EXPECT_FLOAT_EQ(ScaleLearningRate(0.001f, 100, 400), 0.004f);
  // Fig 6 settings: LR 0.0001@384 -> 0.0064@1536 -> 0.4096@6144 follows
  // lr ∝ ranks^3 between those points.
  const float lr1536 = ScaleLearningRate(0.0001f, 384, 1536, 3.0);
  EXPECT_NEAR(lr1536, 0.0064f, 1e-6f);
  const float lr6144 = ScaleLearningRate(0.0001f, 384, 6144, 3.0);
  EXPECT_NEAR(lr6144, 0.4096f, 1e-5f);
}

// ---------------------------------------------------------- LossScaler --

TEST(LossScaler, HalvesOnOverflow) {
  LossScaler scaler({.initial_scale = 1024.0f});
  EXPECT_FALSE(scaler.Update(/*grads_finite=*/false));
  EXPECT_FLOAT_EQ(scaler.scale(), 512.0f);
  EXPECT_EQ(scaler.overflow_count(), 1);
}

TEST(LossScaler, GrowsAfterInterval) {
  LossScaler scaler(
      {.initial_scale = 64.0f, .max_scale = 256.0f, .growth_interval = 3});
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(scaler.Update(true));
  EXPECT_FLOAT_EQ(scaler.scale(), 128.0f);
  for (int i = 0; i < 6; ++i) scaler.Update(true);
  EXPECT_FLOAT_EQ(scaler.scale(), 256.0f);  // capped at max
}

TEST(LossScaler, StaticWhenGrowthDisabled) {
  LossScaler scaler({.initial_scale = 128.0f, .growth_interval = 0});
  for (int i = 0; i < 100; ++i) scaler.Update(true);
  EXPECT_FLOAT_EQ(scaler.scale(), 128.0f);
}

TEST(LossScaler, RespectsMinScale) {
  LossScaler scaler({.initial_scale = 2.0f, .min_scale = 1.0f});
  scaler.Update(false);
  scaler.Update(false);
  scaler.Update(false);
  EXPECT_FLOAT_EQ(scaler.scale(), 1.0f);
}

}  // namespace
}  // namespace exaclim
