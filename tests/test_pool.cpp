// Tests for the pooled tensor-memory arena (DESIGN §12): bucket policy,
// pointer-registry ownership, cross-thread block recycling, the Tensor
// storage redesign on top of PoolBuffer handles, pool-vs-heap
// bit-exactness of a full training step and the zero-allocation
// steady-state contract. The binary is `stress`-labelled so the
// PoolStress cases also run under TSan, where the thread caches and the
// central free-lists must come up clean.

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/alloc_tracker.hpp"
#include "common/pool.hpp"
#include "common/workspace.hpp"
#include "data/dataset.hpp"
#include "nn/loss.hpp"
#include "tensor/tensor.hpp"
#include "train/trainer.hpp"

namespace exaclim {
namespace {

// Each test restores the default-enabled arena on exit so test order
// cannot leak the escape-hatch state.
class PoolTest : public ::testing::Test {
 protected:
  void TearDown() override { SetPoolEnabled(true); }
};

// ------------------------------------------------------ bucket policy --

TEST_F(PoolTest, BucketCapacitiesDoubleFromTheMinimum) {
  ASSERT_GE(PoolBucketCount(), 1);
  for (std::int32_t b = 0; b < PoolBucketCount(); ++b) {
    EXPECT_EQ(PoolBucketElems(b), kMinBucketElems << b);
  }
}

TEST_F(PoolTest, BucketIndexRoundsUpToTheSmallestFit) {
  EXPECT_EQ(PoolBucketIndex(0), 0);
  EXPECT_EQ(PoolBucketIndex(1), 0);
  EXPECT_EQ(PoolBucketIndex(kMinBucketElems), 0);
  EXPECT_EQ(PoolBucketIndex(kMinBucketElems + 1), 1);
  EXPECT_EQ(PoolBucketIndex(2 * kMinBucketElems), 1);
  EXPECT_EQ(PoolBucketIndex(2 * kMinBucketElems + 1), 2);
  // Every bucket's capacity maps back to that bucket; capacity + 1
  // spills into the next one.
  for (std::int32_t b = 0; b + 1 < PoolBucketCount(); ++b) {
    EXPECT_EQ(PoolBucketIndex(PoolBucketElems(b)), b);
    EXPECT_EQ(PoolBucketIndex(PoolBucketElems(b) + 1), b + 1);
  }
}

TEST_F(PoolTest, OverBucketRequestsFallBackToExactHeap) {
  const std::size_t over = PoolBucketElems(PoolBucketCount() - 1) + 1;
  EXPECT_EQ(PoolBucketIndex(over), kPoolBucketHeap);
  PoolBuffer buf = AcquirePoolBuffer(over);
  EXPECT_EQ(buf.bucket(), kPoolBucketHeap);
  EXPECT_EQ(buf.capacity(), over);  // exact-size, not rounded
  EXPECT_FALSE(PoolOwnsPointer(buf.data()));
}

TEST_F(PoolTest, ZeroElementAcquireYieldsNullHandle) {
  PoolBuffer buf = AcquirePoolBuffer(0);
  EXPECT_TRUE(buf.null());
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_EQ(buf.capacity(), 0u);
}

TEST_F(PoolTest, DisabledPoolServesExactHeapBlocks) {
  SetPoolEnabled(false);
  PoolBuffer buf = AcquirePoolBuffer(100);
  EXPECT_EQ(buf.bucket(), kPoolBucketHeap);
  EXPECT_EQ(buf.capacity(), 100u);
  EXPECT_FALSE(PoolOwnsPointer(buf.data()));
}

// ---------------------------------------------------- registry + stats --

TEST_F(PoolTest, RegistryOwnsPooledPayloadsOnly) {
  PoolBuffer buf = AcquirePoolBuffer(128);
  ASSERT_FALSE(buf.null());
  EXPECT_TRUE(PoolOwnsPointer(buf.data()));
  float stack_float = 0.0f;
  EXPECT_FALSE(PoolOwnsPointer(&stack_float));
  EXPECT_FALSE(PoolOwnsPointer(nullptr));
  // Ownership persists after release: the block goes back on a
  // free-list, it is not returned to the system allocator.
  const float* payload = buf.data();
  buf.Release();
  EXPECT_TRUE(PoolOwnsPointer(payload));
}

TEST_F(PoolTest, StatsTrackLiveBytesHitsAndOutstandingBuffers) {
  ResetPoolCounters();
  const PoolStats base = GetPoolStats();
  {
    PoolBuffer a = AcquirePoolBuffer(kMinBucketElems);
    const PoolStats live = GetPoolStats();
    EXPECT_EQ(live.outstanding_buffers, base.outstanding_buffers + 1);
    EXPECT_EQ(live.live_bytes,
              base.live_bytes +
                  std::int64_t(kMinBucketElems * sizeof(float)));
    EXPECT_GE(live.peak_live_bytes, live.live_bytes);
  }
  const PoolStats after = GetPoolStats();
  EXPECT_EQ(after.outstanding_buffers, base.outstanding_buffers);
  EXPECT_EQ(after.live_bytes, base.live_bytes);
  // Acquiring the same size again must be a free-list hit.
  const std::int64_t hits_before = GetPoolStats().hit_count;
  PoolBuffer b = AcquirePoolBuffer(kMinBucketElems);
  EXPECT_EQ(GetPoolStats().hit_count, hits_before + 1);
}

TEST_F(PoolTest, MoveTransfersOwnershipWithoutReleasing) {
  PoolBuffer a = AcquirePoolBuffer(64);
  const float* payload = a.data();
  const std::int64_t outstanding = GetPoolStats().outstanding_buffers;
  PoolBuffer b = std::move(a);
  EXPECT_TRUE(a.null());
  EXPECT_EQ(b.data(), payload);
  EXPECT_EQ(GetPoolStats().outstanding_buffers, outstanding);
}

// ------------------------------------------------- cross-thread return --

TEST_F(PoolTest, BlockReleasedOnAnotherThreadIsRecycled) {
  PoolBuffer buf = AcquirePoolBuffer(512);
  const float* payload = buf.data();
  ASSERT_TRUE(PoolOwnsPointer(payload));
  std::thread other([&] {
    buf.Release();
    // Push the block out of the releasing thread's cache so the
    // acquiring thread below can observe it on the central free-list.
    FlushThreadPoolCache();
  });
  other.join();
  EXPECT_TRUE(buf.null());
  // The same size class must now hit the recycled block (this thread's
  // cache is empty for that bucket after a flush).
  FlushThreadPoolCache();
  const std::int64_t hits_before = GetPoolStats().hit_count;
  PoolBuffer again = AcquirePoolBuffer(512);
  EXPECT_EQ(GetPoolStats().hit_count, hits_before + 1);
  EXPECT_TRUE(PoolOwnsPointer(again.data()));
}

// ------------------------------------------- Tensor storage on the pool --

TEST_F(PoolTest, TensorStorageComesFromTheArena) {
  Tensor t(TensorShape{{4, 32}});
  EXPECT_TRUE(PoolOwnsPointer(t.Raw()));
  // Construction zero-fills regardless of what the recycled block held.
  for (std::int64_t i = 0; i < t.NumElements(); ++i) {
    EXPECT_EQ(t.Raw()[i], 0.0f);
  }
}

TEST_F(PoolTest, FromVectorSpanOverloadCopiesIntoPooledStorage) {
  const std::vector<float> src = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  Tensor t = Tensor::FromVector(TensorShape{{2, 3}},
                                std::span<const float>(src));
  ASSERT_EQ(t.NumElements(), 6);
  EXPECT_TRUE(PoolOwnsPointer(t.Raw()));
  EXPECT_NE(t.Raw(), src.data());  // a copy, never a view
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(t.Raw()[i], src[std::size_t(i)]);
  }
}

TEST_F(PoolTest, ReshapedOwnsItsBufferNoAliasing) {
  Tensor src = Tensor::FromVector(TensorShape{{2, 3}},
                                  {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f});
  Tensor flat = src.Reshaped(TensorShape{{6}});
  ASSERT_NE(flat.Raw(), src.Raw());
  flat.Raw()[0] = -100.0f;  // write through the reshape...
  EXPECT_EQ(src.Raw()[0], 1.0f);  // ...source unchanged: no shared buffer
}

// ----------------------------------------------------- scratch streams --

TEST_F(PoolTest, AcquireScratchZeroElemsReturnsValidPointer) {
  // Regression: the zero-size edge used to return nullptr; callers that
  // pass an empty extent still expect a dereferenceable sentinel.
  float* p = AcquireScratch(ScratchSlot::kLossProbs, 0);
  ASSERT_NE(p, nullptr);
  p[0] = 42.0f;  // the sentinel block is at least one element big
  EXPECT_GE(ScratchCapacity(ScratchSlot::kLossProbs), 1u);
}

TEST_F(PoolTest, ScratchSlotsDrawFromTheArena) {
  float* p = AcquireScratch(ScratchSlot::kStagingDecode, 256);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(PoolOwnsPointer(p));
  EXPECT_GE(ScratchCapacity(ScratchSlot::kStagingDecode), 256u);
  // Growing reacquires; shrinking reuses the larger block in place.
  float* big = AcquireScratch(ScratchSlot::kStagingDecode, 1024);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(AcquireScratch(ScratchSlot::kStagingDecode, 8), big);
}

// --------------------------------------- training-step level contracts --

TrainerOptions SmallTrainerOptions() {
  TrainerOptions o;
  o.arch = TrainerOptions::Arch::kTiramisu;
  o.tiramisu = Tiramisu::Config::Downscaled(4);
  o.local_batch = 2;
  return o;
}

ClimateDataset SmallDataset() {
  ClimateDataset::Options d;
  d.num_samples = 12;
  d.generator.height = 48;
  d.generator.width = 48;
  d.channels = {kTMQ, kU850, kV850, kPSL};
  return ClimateDataset(d);
}

// The pooled arena must be invisible to the math: the same seed and
// batches produce bit-identical losses and parameters with the pool on
// and off (buffers are zero-filled on construction either way).
TEST_F(PoolTest, PooledAndHeapTrainingStepsAreBitIdentical) {
  const ClimateDataset dataset = SmallDataset();
  const auto freq = dataset.MeasureFrequencies(8);
  const TrainerOptions opts = SmallTrainerOptions();

  std::vector<Batch> batches;
  for (std::int64_t s = 0; s < 3; ++s) {
    const std::int64_t idx[] = {s, s + 1};
    batches.push_back(dataset.MakeBatch(DatasetSplit::kTrain, idx));
  }

  const auto run = [&](bool pooled) {
    SetPoolEnabled(pooled);
    RankTrainer trainer(
        opts, MakeClassWeights(freq, WeightingScheme::kInverseSqrt), 0);
    std::vector<double> losses;
    for (const Batch& batch : batches) {
      losses.push_back(trainer.Step(batch).loss);
    }
    std::vector<float> params;
    for (const Param* p : trainer.params()) {
      const float* v = p->value.Raw();
      params.insert(params.end(), v, v + p->value.NumElements());
    }
    SetPoolEnabled(true);
    return std::make_pair(losses, params);
  };

  const auto [pooled_losses, pooled_params] = run(/*pooled=*/true);
  const auto [heap_losses, heap_params] = run(/*pooled=*/false);

  ASSERT_EQ(pooled_losses.size(), heap_losses.size());
  for (std::size_t i = 0; i < pooled_losses.size(); ++i) {
    EXPECT_EQ(pooled_losses[i], heap_losses[i]) << "step " << i;
  }
  ASSERT_EQ(pooled_params.size(), heap_params.size());
  ASSERT_EQ(std::memcmp(pooled_params.data(), heap_params.data(),
                        pooled_params.size() * sizeof(float)),
            0);
}

// The tentpole acceptance gate in test form: after warmup, a training
// step performs zero heap allocations — every tensor, pack panel, conv
// workspace and dispatch task comes from recycled pooled storage.
TEST_F(PoolTest, WarmedTrainingStepPerformsZeroHeapAllocations) {
  const ClimateDataset dataset = SmallDataset();
  const auto freq = dataset.MeasureFrequencies(8);
  RankTrainer trainer(
      SmallTrainerOptions(),
      MakeClassWeights(freq, WeightingScheme::kInverseSqrt), 0);

  // Batches are made outside the measured region (decode staging is
  // I/O-side, not step-side) and reused so iteration s is truly warm.
  std::vector<Batch> batches;
  for (std::int64_t s = 0; s < 3; ++s) {
    const std::int64_t idx[] = {s, s + 1};
    batches.push_back(dataset.MakeBatch(DatasetSplit::kTrain, idx));
  }
  for (const Batch& batch : batches) (void)trainer.Step(batch);  // warmup

  SetAllocTracking(true);
  {
    ScopedAllocCheck guard(EXACLIM_ALLOC_SITE("test.pool_steady_state"),
                           ScopedAllocCheck::Mode::kAssertNoAlloc,
                           ScopedAllocCheck::Scope::kThread);
    ScopedAllocCheck census(EXACLIM_ALLOC_SITE("test.pool_steady_census"),
                            ScopedAllocCheck::Mode::kCensus,
                            ScopedAllocCheck::Scope::kGlobal);
    for (const Batch& batch : batches) (void)trainer.Step(batch);
    EXPECT_EQ(guard.violations(), 0);
    EXPECT_EQ(census.count(), 0) << census.bytes() << " bytes allocated";
  }
  SetAllocTracking(false);
}

// Geometry churn on one conv layer (multi-scale evaluation pattern): the
// implicit-GEMM row tables and workspace panels are rebuilt in place on a
// geometry change — after one warm cycle through all geometries, ping-
// ponging between them must allocate nothing (DESIGN §15 ratchet: the
// implicit path adds zero steady-state allocations on top of im2col).
TEST_F(PoolTest, ConvGeometryChurnAllocatesNothingWhenWarm) {
  Rng rng(53);
  Conv2d conv("c", {.in_c = 3, .out_c = 4, .kernel = 3}, rng);
  std::vector<Tensor> inputs;
  for (const auto& [h, w, batch] :
       {std::tuple{10, 12, 2}, {14, 8, 3}, {10, 12, 2}}) {
    Rng xrng(static_cast<std::uint64_t>(h * 100 + w));
    inputs.push_back(Tensor::Uniform(TensorShape::NCHW(batch, 3, h, w),
                                     xrng, -1.0f, 1.0f));
  }
  // Two warm cycles: the first sizes every buffer family, the second
  // proves the sizes reached a fixed point before the measured region.
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (const Tensor& x : inputs) (void)conv.Forward(x, false);
  }

  SetAllocTracking(true);
  {
    ScopedAllocCheck census(EXACLIM_ALLOC_SITE("test.conv_geom_churn"),
                            ScopedAllocCheck::Mode::kCensus,
                            ScopedAllocCheck::Scope::kGlobal);
    for (int cycle = 0; cycle < 2; ++cycle) {
      for (const Tensor& x : inputs) (void)conv.Forward(x, false);
    }
    EXPECT_EQ(census.count(), 0) << census.bytes() << " bytes allocated";
  }
  SetAllocTracking(false);
}

// ------------------------------------------------------------- stress --

// Concurrent acquire/write/release across threads and size classes;
// runs under TSan via the `stress` ctest label. Exercises thread-cache
// overflow into the central pool and cross-thread block migration.
TEST(PoolStress, ConcurrentAcquireReleaseAcrossBuckets) {
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  // Thread-local scratch slots of the main thread and the global worker
  // pool legitimately stay live across tests; assert the stress run
  // itself is balanced, not that the whole process is empty.
  const PoolStats before = GetPoolStats();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      std::vector<PoolBuffer> held;
      for (int i = 0; i < kIters; ++i) {
        const std::size_t elems =
            std::size_t(1) << ((t + i) % 10);  // 1 .. 512 floats
        PoolBuffer buf = AcquirePoolBuffer(elems);
        buf.data()[0] = float(t);
        buf.data()[buf.capacity() - 1] = float(i);
        if (i % 3 == 0) {
          held.push_back(std::move(buf));  // stagger lifetimes
          if (held.size() > 16) held.erase(held.begin());
        }
      }
      held.clear();
      FlushThreadPoolCache();
    });
  }
  for (auto& th : threads) th.join();
  const PoolStats stats = GetPoolStats();
  EXPECT_EQ(stats.outstanding_buffers, before.outstanding_buffers);
  EXPECT_EQ(stats.live_bytes, before.live_bytes);
}

TEST(PoolStress, ConcurrentTensorChurnStaysConsistent) {
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 100; ++i) {
        Tensor a(TensorShape{{4, 8 + (t + i) % 8}});
        Tensor b = a;           // copy: fresh pooled block + memcpy
        b.Raw()[0] = float(i);
        Tensor c = std::move(b);  // move: handle transfer, no pool traffic
        EXPECT_EQ(c.Raw()[0], float(i));
        EXPECT_EQ(a.Raw()[0], 0.0f);
      }
      FlushThreadPoolCache();
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace exaclim
