#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "io/pipeline.hpp"
#include "json_lite.hpp"
#include "netsim/event_engine.hpp"
#include "obs/obs.hpp"
#include "stats/stats.hpp"
#include "train/trainer.hpp"

namespace exaclim {
namespace {

using testing::JsonParser;
using testing::JsonValue;

// ------------------------------------------------------------ registry --

TEST(Metrics, CounterAndGaugeBasics) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("bytes");
  c->Add(100);
  c->Increment();
  EXPECT_EQ(c->value(), 101);

  obs::Gauge* g = registry.GetGauge("depth");
  g->Set(3.5);
  EXPECT_EQ(g->value(), 3.5);
}

TEST(Metrics, HandlesAreStableAcrossLookups) {
  obs::MetricsRegistry registry;
  obs::Counter* first = registry.GetCounter("bytes");
  // Register plenty of other metrics — the original handle must survive.
  for (int i = 0; i < 64; ++i) {
    (void)registry.GetCounter("other_" + std::to_string(i));
    (void)registry.GetHistogram("hist_" + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("bytes"), first);
}

TEST(Metrics, HistogramSummaryMatchesStatsPercentile) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("step_s");
  std::vector<double> samples;
  // Deterministic but unsorted sample set.
  for (int i = 0; i < 97; ++i) {
    samples.push_back(static_cast<double>((i * 37) % 101));
  }
  for (const double s : samples) h->Record(s);

  const obs::HistogramSummary summary = h->Summary();
  EXPECT_EQ(summary.count, static_cast<std::int64_t>(samples.size()));
  EXPECT_EQ(summary.min, *std::min_element(samples.begin(), samples.end()));
  EXPECT_EQ(summary.max, *std::max_element(samples.begin(), samples.end()));
  EXPECT_DOUBLE_EQ(summary.median, Percentile(samples, 0.5));
  EXPECT_DOUBLE_EQ(summary.p16, Percentile(samples, 0.16));
  EXPECT_DOUBLE_EQ(summary.p84, Percentile(samples, 0.84));
  double mean = 0.0;
  for (const double s : samples) mean += s;
  mean /= static_cast<double>(samples.size());
  EXPECT_NEAR(summary.mean, mean, 1e-12);
}

TEST(Metrics, ReportListsEveryMetric) {
  obs::MetricsRegistry registry;
  registry.GetCounter("exchange.bytes")->Add(42);
  registry.GetGauge("pipeline.queue_depth")->Set(2.0);
  registry.GetHistogram("step.total_s")->Record(0.5);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("exchange.bytes"), std::string::npos);
  EXPECT_NE(report.find("pipeline.queue_depth"), std::string::npos);
  EXPECT_NE(report.find("step.total_s"), std::string::npos);
  EXPECT_NE(report.find("42"), std::string::npos);
}

// -------------------------------------------------------- global enable --

class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::Disable(); }
};

TEST(Obs, DisabledHandlesAreNull) {
  ASSERT_FALSE(obs::Enabled());
  EXPECT_EQ(obs::Metrics(), nullptr);
  EXPECT_EQ(obs::Tracer(), nullptr);
  EXPECT_EQ(obs::CounterOrNull("x"), nullptr);
  EXPECT_EQ(obs::GaugeOrNull("x"), nullptr);
  EXPECT_EQ(obs::HistogramOrNull("x"), nullptr);
}

TEST_F(ObsTest, EnableInstallsGlobalHandles) {
  obs::Enable();
  EXPECT_TRUE(obs::Enabled());
  ASSERT_NE(obs::Metrics(), nullptr);
  ASSERT_NE(obs::Tracer(), nullptr);
  obs::CounterOrNull("hits")->Increment();
  EXPECT_EQ(obs::Metrics()->GetCounter("hits")->value(), 1);
  obs::Disable();
  EXPECT_EQ(obs::Metrics(), nullptr);
  EXPECT_EQ(obs::CounterOrNull("hits"), nullptr);
}

TEST_F(ObsTest, ScopedTimerPublishesToEverySink) {
  obs::Enable();
  obs::Histogram* hist = obs::HistogramOrNull("timer_s");
  double seconds = -1.0;
  {
    obs::ScopedTimer timer("unit.work", "test", &seconds, hist);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(seconds, 0.0);
  const obs::HistogramSummary summary = hist->Summary();
  EXPECT_EQ(summary.count, 1);
  EXPECT_GT(summary.median, 0.0);
  const auto events = obs::Tracer()->Snapshot();
  const auto it = std::find_if(events.begin(), events.end(),
                               [](const obs::TraceEvent& e) {
                                 return e.name == "unit.work" && e.ph == 'X';
                               });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->cat, "test");
  EXPECT_GT(it->dur_us, 0.0);
}

// ----------------------------------------------------------------- trace --

// True when `inner` is wholly contained in `outer` on the same lane.
bool SpanContains(const JsonValue& outer, const JsonValue& inner) {
  const double slack = 0.5;  // microseconds, float rounding
  return outer.NumberOr("tid", -1) == inner.NumberOr("tid", -2) &&
         outer.NumberOr("ts", 1e30) - slack <= inner.NumberOr("ts", 0) &&
         inner.NumberOr("ts", 0) + inner.NumberOr("dur", 0) <=
             outer.NumberOr("ts", 0) + outer.NumberOr("dur", 0) + slack;
}

std::vector<const JsonValue*> EventsNamed(const JsonValue& doc,
                                          const std::string& name) {
  std::vector<const JsonValue*> out;
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr) return out;
  for (const JsonValue& e : events->array) {
    if (e.StringOr("name", "") == name) out.push_back(&e);
  }
  return out;
}

TEST(Trace, JsonParsesAndSpansNest) {
  obs::TraceRecorder recorder;
  recorder.RecordSpanAt("outer", "test", 100.0, 900.0, 7);
  recorder.RecordSpanAt("inner", "test", 200.0, 300.0, 7);
  recorder.RecordCounterAt("queue", 3.0, 250.0, 7);

  const auto doc = JsonParser::Parse(recorder.ToJson());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->IsObject());

  const auto outer = EventsNamed(*doc, "outer");
  const auto inner = EventsNamed(*doc, "inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0]->StringOr("ph", ""), "X");
  EXPECT_TRUE(SpanContains(*outer[0], *inner[0]));

  const auto counters = EventsNamed(*doc, "queue");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0]->StringOr("ph", ""), "C");
  const JsonValue* args = counters[0]->Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->NumberOr("value", -1.0), 3.0);
}

TEST(Trace, EscapesSpecialCharactersInNames) {
  obs::TraceRecorder recorder;
  recorder.RecordSpanAt("weird \"name\"\n\\slash", "test", 0.0, 1.0, 1);
  const auto doc = JsonParser::Parse(recorder.ToJson());
  ASSERT_TRUE(doc.has_value());
  const auto events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  EXPECT_EQ(events->array[0].StringOr("name", ""), "weird \"name\"\n\\slash");
}

TEST(Trace, SnapshotIsTimeSortedAcrossThreads) {
  obs::TraceRecorder recorder;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < 50; ++i) {
        const auto start = obs::TraceRecorder::Clock::now();
        recorder.RecordSpan("work", "test", start, start);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 200u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
  // Each recording thread got its own lane.
  std::vector<int> tids;
  for (const auto& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), 4u);
}

TEST(Trace, WriteJsonFileRoundTrips) {
  obs::TraceRecorder recorder;
  recorder.RecordSpanAt("span", "test", 10.0, 5.0, 1);
  const auto path =
      std::filesystem::temp_directory_path() / "exaclim_trace_test.json";
  ASSERT_TRUE(recorder.WriteJsonFile(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::filesystem::remove(path);
  const auto doc = JsonParser::Parse(buffer.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(EventsNamed(*doc, "span").size(), 1u);
}

// --------------------------------------------------------------- logging --

TEST(Logging, FormatKVAlternatesKeysAndValues) {
  EXPECT_EQ(detail::FormatKV("a", 1, "b", "x"), "a=1 b=x");
  EXPECT_EQ(detail::FormatKV("loss", 0.5), "loss=0.5");
  EXPECT_EQ(detail::FormatKV(), "");
}

// -------------------------------------------------------- instrumentation --

TEST(StepTimings, PopulatedWithoutObservability) {
  ASSERT_FALSE(obs::Enabled());
  ClimateDataset::Options data_opts;
  data_opts.num_samples = 12;
  data_opts.generator.height = 32;
  data_opts.generator.width = 32;
  data_opts.channels = {kTMQ, kU850, kV850, kPSL};
  ClimateDataset dataset(data_opts);
  TrainerOptions opts;
  opts.tiramisu = Tiramisu::Config::Downscaled(4);
  const auto freq = dataset.MeasureFrequencies(4);
  RankTrainer trainer(
      opts, MakeClassWeights(freq, WeightingScheme::kInverseSqrt), 0);
  const Batch batch =
      dataset.MakeBatch(DatasetSplit::kTrain, std::vector<std::int64_t>{0});
  const auto result = trainer.Step(batch);
  EXPECT_GT(result.timings.forward_seconds, 0.0);
  EXPECT_GT(result.timings.backward_seconds, 0.0);
  EXPECT_GT(result.timings.update_seconds, 0.0);
  EXPECT_EQ(result.timings.exchange_seconds, 0.0);  // local step
  EXPECT_GE(result.timings.total_seconds,
            result.timings.forward_seconds +
                result.timings.backward_seconds +
                result.timings.update_seconds);
}

TEST_F(ObsTest, EndToEndTraceHasNestedStepSpansAndQueueDepth) {
  obs::Enable();

  ClimateDataset::Options data_opts;
  data_opts.num_samples = 12;
  data_opts.generator.height = 32;
  data_opts.generator.width = 32;
  data_opts.channels = {kTMQ, kU850, kV850, kPSL};
  ClimateDataset dataset(data_opts);
  TrainerOptions opts;
  opts.tiramisu = Tiramisu::Config::Downscaled(4);
  opts.exchanger.transport = ReduceTransport::kMpiRing;
  const auto freq = dataset.MeasureFrequencies(4);
  const auto weights = MakeClassWeights(freq, WeightingScheme::kInverseSqrt);

  constexpr std::int64_t kSteps = 3;
  SimWorld world(2);
  world.Run([&](Communicator& comm) {
    RankTrainer trainer(opts, weights, comm.rank());
    InputPipeline pipeline(
        [&](std::int64_t index) {
          return dataset.MakeBatch(
              DatasetSplit::kTrain,
              std::vector<std::int64_t>{index % dataset.size(
                                                    DatasetSplit::kTrain)});
        },
        kSteps, {.workers = 2, .prefetch_depth = 2});
    while (auto batch = pipeline.Next()) {
      (void)trainer.Step(*batch, &comm);
    }
  });

  // The registry saw the hvd and io instrumentation.
  ASSERT_NE(obs::Metrics(), nullptr);
  EXPECT_GT(obs::Metrics()->GetCounter("exchange.bytes")->value(), 0);
  EXPECT_EQ(obs::Metrics()->GetHistogram("step.total_s")->Summary().count,
            2 * kSteps);

  const auto doc = JsonParser::Parse(obs::Tracer()->ToJson());
  ASSERT_TRUE(doc.has_value());

  const auto steps = EventsNamed(*doc, "step");
  ASSERT_EQ(steps.size(), 2u * kSteps);
  // Every per-phase span nests inside a "step" span on the same lane.
  for (const char* phase :
       {"step.forward", "step.backward", "step.exchange", "step.update"}) {
    const auto spans = EventsNamed(*doc, phase);
    ASSERT_EQ(spans.size(), 2u * kSteps) << phase;
    for (const JsonValue* span : spans) {
      const bool nested =
          std::any_of(steps.begin(), steps.end(),
                      [&](const JsonValue* s) {
                        return SpanContains(*s, *span);
                      });
      EXPECT_TRUE(nested) << phase << " span not inside any step span";
    }
  }
  // The exchange instrumentation nests one level deeper still.
  const auto exchanges = EventsNamed(*doc, "exchange.allreduce");
  ASSERT_EQ(exchanges.size(), 2u * kSteps);

  // Queue-depth counter track from the input pipeline.
  const auto depth = EventsNamed(*doc, "pipeline.queue_depth");
  ASSERT_GE(depth.size(), 2u * kSteps);
  for (const JsonValue* d : depth) {
    EXPECT_EQ(d->StringOr("ph", ""), "C");
    ASSERT_NE(d->Find("args"), nullptr);
    EXPECT_GE(d->Find("args")->NumberOr("value", -1.0), 0.0);
  }
}

TEST_F(ObsTest, SimulatedOverlapExportsSimLanes) {
  obs::Enable();
  OverlapConfig config;
  config.steps = 6;
  config.compute_seconds = 1.0;
  config.bandwidth = 1e9;
  config.latency = 1e-4;
  config.bucket_bytes = {1e6, 1e6};
  config.bucket_ready_s = {0.4, 0.9};
  (void)SimulateOverlap(config);

  const auto doc = JsonParser::Parse(obs::Tracer()->ToJson());
  ASSERT_TRUE(doc.has_value());
  const auto compute = EventsNamed(*doc, "sim.compute");
  const auto transfer = EventsNamed(*doc, "sim.transfer");
  EXPECT_EQ(compute.size(), 6u);
  EXPECT_EQ(transfer.size(), 12u);
  for (const JsonValue* e : compute) {
    EXPECT_EQ(e->NumberOr("tid", -1), obs::TraceRecorder::kSimTid);
  }
  for (const JsonValue* e : transfer) {
    EXPECT_EQ(e->NumberOr("tid", -1), obs::TraceRecorder::kSimTid + 1);
  }
}

}  // namespace
}  // namespace exaclim
