// Overlapped gradient exchange tests (DESIGN §14): bit-identity of
// overlap-on vs overlap-off (FP32 and the packed-FP16 wire), the bounded
// bucket-tag layout (regression for the tag overflow past the elastic
// generation stride), binary16 overflow-boundary agreement between the
// RTNE converter, CountHalfNonFinite's bit threshold and the packed wire,
// wire-byte halving under FP16, and the chaos soak with the exchange
// running on its dedicated thread.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "comm/elastic.hpp"
#include "comm/world.hpp"
#include "common/fault.hpp"
#include "common/half.hpp"
#include "hvd/exchanger.hpp"
#include "tensor/cast.hpp"
#include "train/trainer.hpp"

namespace exaclim {
namespace {

struct FaultScope {
  FaultScope() { FaultInjector::Global().Reset(); }
  ~FaultScope() { FaultInjector::Global().Reset(); }
};

std::vector<std::unique_ptr<Param>> MakeParams(int rank, std::int64_t count,
                                               std::int64_t elems) {
  std::vector<std::unique_ptr<Param>> params;
  for (std::int64_t i = 0; i < count; ++i) {
    auto p = std::make_unique<Param>("p" + std::to_string(i),
                                     Tensor::Zeros(TensorShape{elems + i}));
    for (std::int64_t j = 0; j < p->grad.NumElements(); ++j) {
      p->grad[static_cast<std::size_t>(j)] =
          static_cast<float>(rank + 1) * 0.5f + static_cast<float>(i + j);
    }
    params.push_back(std::move(p));
  }
  return params;
}

ClimateDataset::Options TinyData() {
  ClimateDataset::Options o;
  o.num_samples = 40;
  o.generator.height = 32;
  o.generator.width = 32;
  o.channels = {kTMQ, kU850, kV850, kPSL};
  return o;
}

TrainerOptions TinyTrainer() {
  TrainerOptions o;
  o.arch = TrainerOptions::Arch::kTiramisu;
  o.tiramisu = Tiramisu::Config::Downscaled(4);
  o.learning_rate = 2e-3f;
  o.exchanger.transport = ReduceTransport::kMpiRing;
  // Overlap-on must be bit-identical to overlap-off: the readiness
  // shuffle stays off because overlap's readiness order IS the backward
  // emission order (see ExchangerOptions).
  o.exchanger.shuffle_ready_order = false;
  return o;
}

// ------------------------------------------------ exchanger-level runs --

struct ExchangeOutcome {
  std::vector<float> rank0_grads;
  std::int64_t fused_buffers = 0;
};

/// Runs one exchange over 6 ranks with a small fusion threshold (so the
/// tensors split into several buckets) and returns rank 0's resulting
/// gradients. `overlap == true` drives the streaming
/// BeginStep/NotifyGradReady/WaitAll path with the emission order set to
/// the index order; `overlap == false` runs the serialized path fed the
/// same readiness order.
ExchangeOutcome RunExchange(ReduceTransport transport, Precision wire,
                            bool overlap) {
  const int p = 6;
  SimWorld world(p);
  ExchangeOutcome out;
  world.Run([&](Communicator& comm) {
    auto owned = MakeParams(comm.rank(), 5, 7);
    std::vector<Param*> params;
    for (auto& q : owned) params.push_back(q.get());
    ExchangerOptions opts;
    opts.transport = transport;
    opts.wire_precision = wire;
    opts.shuffle_ready_order = false;
    opts.fusion_threshold_bytes = 64;  // a few tensors per bucket
    opts.hybrid.topology.ranks_per_node = 3;
    opts.hybrid.mpi_ranks_per_node = 2;
    GradientExchanger exchanger(opts, 7);
    if (overlap) {
      exchanger.BeginStep(comm, params, /*elastic=*/nullptr,
                          Deadline(kNoTimeout));
      for (int i = 0; i < static_cast<int>(params.size()); ++i) {
        exchanger.NotifyGradReady(i);
      }
      const CollectiveResult r = exchanger.WaitAll();
      EXPECT_TRUE(r.ok());
    } else {
      exchanger.Exchange(comm, params);
    }
    if (comm.rank() == 0) {
      out.fused_buffers = exchanger.last_fused_buffers();
      for (Param* q : params) {
        out.rank0_grads.insert(out.rank0_grads.end(), q->grad.Data().begin(),
                               q->grad.Data().end());
      }
    }
  });
  return out;
}

class OverlapTransports : public ::testing::TestWithParam<ReduceTransport> {};

TEST_P(OverlapTransports, OverlapOnIsBitIdenticalToOffFP32) {
  const ExchangeOutcome off =
      RunExchange(GetParam(), Precision::kFP32, /*overlap=*/false);
  const ExchangeOutcome on =
      RunExchange(GetParam(), Precision::kFP32, /*overlap=*/true);
  EXPECT_GT(off.fused_buffers, 1);  // the threshold actually split buckets
  EXPECT_EQ(on.fused_buffers, off.fused_buffers);
  EXPECT_EQ(on.rank0_grads, off.rank0_grads);  // bit identity
}

TEST_P(OverlapTransports, OverlapOnIsBitIdenticalToOffFP16Wire) {
  const ExchangeOutcome off =
      RunExchange(GetParam(), Precision::kFP16, /*overlap=*/false);
  const ExchangeOutcome on =
      RunExchange(GetParam(), Precision::kFP16, /*overlap=*/true);
  EXPECT_EQ(on.fused_buffers, off.fused_buffers);
  EXPECT_EQ(on.rank0_grads, off.rank0_grads);  // bit identity
}

INSTANTIATE_TEST_SUITE_P(AllTransports, OverlapTransports,
                         ::testing::Values(ReduceTransport::kMpiRing,
                                           ReduceTransport::kMpiTree,
                                           ReduceTransport::kHybrid));

TEST(OverlapExchange, AllRanksFinishBitIdenticalAcrossRanks) {
  const int p = 4;
  SimWorld world(p);
  std::vector<std::vector<float>> results(p);
  world.Run([&](Communicator& comm) {
    auto owned = MakeParams(comm.rank(), 6, 5);
    std::vector<Param*> params;
    for (auto& q : owned) params.push_back(q.get());
    ExchangerOptions opts;
    opts.transport = ReduceTransport::kMpiRing;
    opts.shuffle_ready_order = false;
    opts.fusion_threshold_bytes = 48;
    GradientExchanger exchanger(opts, 11);
    // Two consecutive overlapped steps through one exchanger (the
    // persistent exchange thread is reused).
    for (int s = 0; s < 2; ++s) {
      exchanger.BeginStep(comm, params, nullptr, Deadline(kNoTimeout));
      for (int i = 0; i < static_cast<int>(params.size()); ++i) {
        exchanger.NotifyGradReady(i);
      }
      const CollectiveResult r = exchanger.WaitAll();
      EXPECT_TRUE(r.ok());
    }
    std::vector<float>& flat = results[static_cast<std::size_t>(comm.rank())];
    for (Param* q : params) {
      flat.insert(flat.end(), q->grad.Data().begin(), q->grad.Data().end());
    }
  });
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);
  }
}

// ------------------------------------------------- trainer bit identity --

TEST(OverlapBitIdentity, TrainerOverlapOnMatchesOff) {
  ClimateDataset dataset(TinyData());
  TrainerOptions off = TinyTrainer();
  TrainerOptions on = off;
  on.exchanger.overlap = true;

  const TrainRunResult a = RunDistributedTraining(off, dataset, 4, 3, 8);
  const TrainRunResult b = RunDistributedTraining(on, dataset, 4, 3, 8);
  EXPECT_EQ(a.loss_history, b.loss_history);
  EXPECT_EQ(a.accuracy_history, b.accuracy_history);
  EXPECT_EQ(a.survivor_param_crcs, b.survivor_param_crcs);
}

TEST(OverlapBitIdentity, TrainerOverlapOnMatchesOffFP16Wire) {
  ClimateDataset dataset(TinyData());
  TrainerOptions off = TinyTrainer();
  off.exchanger.wire_precision = Precision::kFP16;
  TrainerOptions on = off;
  on.exchanger.overlap = true;

  const TrainRunResult a = RunDistributedTraining(off, dataset, 4, 3, 8);
  const TrainRunResult b = RunDistributedTraining(on, dataset, 4, 3, 8);
  EXPECT_EQ(a.loss_history, b.loss_history);
  EXPECT_EQ(a.survivor_param_crcs, b.survivor_param_crcs);
}

TEST(OverlapBitIdentity, HybridTransportAlsoMatches) {
  ClimateDataset dataset(TinyData());
  TrainerOptions off = TinyTrainer();
  off.exchanger.transport = ReduceTransport::kHybrid;
  off.exchanger.hybrid.topology.ranks_per_node = 2;
  off.exchanger.hybrid.mpi_ranks_per_node = 2;
  TrainerOptions on = off;
  on.exchanger.overlap = true;

  const TrainRunResult a = RunDistributedTraining(off, dataset, 4, 3, 8);
  const TrainRunResult b = RunDistributedTraining(on, dataset, 4, 3, 8);
  EXPECT_EQ(a.loss_history, b.loss_history);
  EXPECT_EQ(a.survivor_param_crcs, b.survivor_param_crcs);
}

// --------------------------------------------------- bucket tag layout --

TEST(BucketTagLayout, StaysInsideOneGenerationSaltBudget) {
  EXPECT_GE(kBucketTagSlots, 1000);
  for (const int i : {0, 1, kBucketTagSlots - 1, kBucketTagSlots,
                      2 * kBucketTagSlots + 17, 100000, 1 << 28}) {
    const int tag = BucketTag(i);
    EXPECT_GE(tag, kBucketTagBase) << "bucket " << i;
    // Every tag a bucket's collective can touch (tag .. tag+stride)
    // stays below the generation stride, so GenTag(BucketTag(i)) can
    // never alias the next generation's namespace.
    EXPECT_LE(tag + kBucketTagStride, kGenTagStride) << "bucket " << i;
  }
  // Regression: the pre-fix layout (20000 + i*700) crossed into
  // generation N+1's tag namespace at bucket 1400.
  EXPECT_GE(20000 + 1400 * 700, kGenTagStride);
}

TEST(BucketTagLayout, ExchangeSurvivesMoreBucketsThanTagSlots) {
  // Tiny fusion threshold: every tensor becomes its own bucket, and with
  // more tensors than tag slots the window index wraps — the collective
  // must still finish with correctly averaged gradients.
  const int n = kBucketTagSlots + 40;
  SimWorld world(2);
  std::int64_t buffers = 0;
  world.Run([&](Communicator& comm) {
    std::vector<std::unique_ptr<Param>> owned;
    std::vector<Param*> params;
    for (int i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<Param>("p" + std::to_string(i),
                                              Tensor::Zeros(TensorShape{1})));
      owned.back()->grad[0] = static_cast<float>(comm.rank() + 1);
      params.push_back(owned.back().get());
    }
    ExchangerOptions opts;
    opts.transport = ReduceTransport::kMpiRing;
    opts.shuffle_ready_order = false;
    opts.fusion_threshold_bytes = 1;
    GradientExchanger exchanger(opts, 3);
    exchanger.Exchange(comm, params);
    for (int i = 0; i < n; ++i) {
      ASSERT_FLOAT_EQ(params[static_cast<std::size_t>(i)]->grad[0], 1.5f)
          << "tensor " << i;
    }
    if (comm.rank() == 0) buffers = exchanger.last_fused_buffers();
  });
  EXPECT_EQ(buffers, n);
}

// ------------------------------------------------------ env overrides --

TEST(ExchangerOptionsEnv, FromEnvOverridesProgrammaticOptions) {
  ::setenv("EXACLIM_OVERLAP", "1", 1);
  ::setenv("EXACLIM_FUSION_BYTES", "123456", 1);
  ::setenv("EXACLIM_WIRE", "fp16", 1);
  const ExchangerOptions on = ExchangerOptions::FromEnv(ExchangerOptions{});
  EXPECT_TRUE(on.overlap);
  EXPECT_EQ(on.fusion_threshold_bytes, 123456);
  EXPECT_EQ(on.wire_precision, Precision::kFP16);

  ::setenv("EXACLIM_OVERLAP", "off", 1);
  ::setenv("EXACLIM_WIRE", "fp32", 1);
  ExchangerOptions base;
  base.overlap = true;
  base.wire_precision = Precision::kFP16;
  const ExchangerOptions off = ExchangerOptions::FromEnv(base);
  EXPECT_FALSE(off.overlap);
  EXPECT_EQ(off.wire_precision, Precision::kFP32);

  ::unsetenv("EXACLIM_OVERLAP");
  ::unsetenv("EXACLIM_FUSION_BYTES");
  ::unsetenv("EXACLIM_WIRE");
}

// ------------------------------------------- binary16 overflow boundary --

TEST(HalfOverflowBoundary, ThresholdBitPatternIsSixtyFiveThousandFiveTwenty) {
  // CountHalfNonFinite compares against 0x477ff000 — the float 65520.0f,
  // the exact RTNE overflow boundary of binary16 (halfway between the
  // max finite half 65504 and the would-be 65536; the tie rounds to the
  // even candidate, which is infinity).
  EXPECT_EQ(std::bit_cast<std::uint32_t>(65520.0f), 0x477ff000u);
  EXPECT_EQ(std::bit_cast<std::uint32_t>(65504.0f), 0x477fe000u);

  EXPECT_TRUE(Half(65504.0f).IsFinite());
  EXPECT_EQ(Half(65504.0f).bits(), 0x7bffu);
  // Just below the boundary rounds DOWN to 65504 — still finite.
  EXPECT_TRUE(Half(std::nextafterf(65520.0f, 0.0f)).IsFinite());
  EXPECT_EQ(Half(std::nextafterf(65520.0f, 0.0f)).bits(), 0x7bffu);
  // The boundary itself is a tie: round-to-even overflows to +inf.
  EXPECT_TRUE(Half(65520.0f).IsInf());
  EXPECT_TRUE(Half(-65520.0f).IsInf());
  EXPECT_TRUE(Half(65536.0f).IsInf());
  EXPECT_TRUE(
      Half(std::numeric_limits<float>::quiet_NaN()).IsNan());
}

TEST(HalfOverflowBoundary, FuzzCounterPackAndRtneAgree) {
  // Fuzz the overflow boundary: for every value, the three FP16 paths —
  // RTNE conversion (Half), the counter's bit threshold
  // (CountHalfNonFinite) and the packed wire (PackHalf/UnpackHalf) —
  // must agree on finiteness, and the packed bits must equal the RTNE
  // bits (the wire is exactly the storage conversion).
  std::mt19937 rng(0xC0FFEEu);
  std::vector<float> values{
      0.0f,      -0.0f,    1.0f,      65504.0f,  -65504.0f,
      65519.5f,  65520.0f, -65520.0f, 65536.0f,  1e30f,
      -1e30f,    1e-8f,    std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      std::nextafterf(65520.0f, 0.0f),
      std::nextafterf(65520.0f, 1e30f)};
  std::uniform_real_distribution<float> near_boundary(65400.0f, 65700.0f);
  std::uniform_real_distribution<float> wide(-1e6f, 1e6f);
  for (int i = 0; i < 2000; ++i) values.push_back(near_boundary(rng));
  for (int i = 0; i < 2000; ++i) values.push_back(wide(rng));
  for (int i = 0; i < 500; ++i) {
    // Sign/mantissa fuzz right at the boundary neighbourhood.
    values.push_back((rng() % 2 ? 1.0f : -1.0f) *
                     (65519.0f + static_cast<float>(rng() % 4096) / 1024.0f));
  }

  std::int64_t expected_nonfinite = 0;
  for (const float v : values) {
    const Half h(v);
    const bool finite = h.IsFinite();
    if (!finite) ++expected_nonfinite;

    const float one[1] = {v};
    EXPECT_EQ(CountHalfNonFinite(std::span<const float>(one, 1)),
              finite ? 0 : 1)
        << "value " << v;

    std::uint16_t packed[1] = {0};
    PackHalf(std::span<const float>(one, 1),
             std::span<std::uint16_t>(packed, 1));
    EXPECT_EQ(packed[0], h.bits()) << "value " << v;

    float unpacked[1] = {0.0f};
    UnpackHalf(std::span<const std::uint16_t>(packed, 1),
               std::span<float>(unpacked, 1));
    EXPECT_EQ(std::isfinite(unpacked[0]), finite) << "value " << v;
  }
  // And the batched counter agrees with the per-element sum.
  EXPECT_EQ(CountHalfNonFinite(values), expected_nonfinite);
}

// --------------------------------------------------- wire byte halving --

TEST(WireBytes, FP16WireHalvesBytesOnTheWire) {
  const std::int64_t elems = 40000;
  auto run = [&](Precision wire) {
    SimWorld world(4);
    world.Run([&](Communicator& comm) {
      Param param("p", Tensor::Zeros(TensorShape{elems}));
      param.grad.Fill(static_cast<float>(comm.rank() + 1));
      ExchangerOptions opts;
      opts.transport = ReduceTransport::kMpiRing;
      opts.shuffle_ready_order = false;
      opts.wire_precision = wire;
      GradientExchanger exchanger(opts, 3);
      std::vector<Param*> params{&param};
      exchanger.Exchange(comm, params);
      EXPECT_FLOAT_EQ(param.grad[0], 2.5f);  // mean of 1..4, half-exact
    });
    return world.total_bytes();
  };
  const std::int64_t fp32 = run(Precision::kFP32);
  const std::int64_t fp16 = run(Precision::kFP16);
  // Data dominates control traffic at this size: the FP16 wire must cut
  // total bytes to about half, not merely relabel the accounting.
  EXPECT_LT(fp16, fp32 * 55 / 100);
  EXPECT_GT(fp16, fp32 * 45 / 100);
}

// ----------------------------------------------------------- chaos soak --
//
// The same deterministic schedule as test_elastic's ChaosSmoke, with the
// exchange overlapped: rank 4 dies at its step-3 entry, rank 1 dies
// mid-exchange at step 4 — this time on its dedicated exchange thread,
// with the RankKilledError rethrown out of WaitAll on the trainer thread.

constexpr char kChaosSchedule[] =
    "elastic.kill.4:1:7:1:0:3,elastic.exchange.kill.1:1:9:1:0:4";

TEST(OverlapChaosSmoke, TrainingSurvivesKillsWithOverlappedExchange) {
  FaultScope scope;
  FaultInjector::Global().ArmFromString(kChaosSchedule);
  ClimateDataset dataset(TinyData());
  TrainerOptions opts = TinyTrainer();
  opts.exchanger.overlap = true;
  opts.elastic.enabled = true;
  opts.elastic.collective_timeout_s = 30.0;
  opts.elastic.rebuild_timeout_s = 20.0;
  const TrainRunResult result =
      RunDistributedTraining(opts, dataset, /*ranks=*/6, /*steps=*/7,
                             /*images_per_rank=*/8);

  EXPECT_EQ(result.survived, (std::vector<char>{1, 0, 1, 1, 0, 1}));
  EXPECT_EQ(result.final_world_size, 4);
  EXPECT_EQ(result.final_generation, 2);
  EXPECT_EQ(result.recoveries, 2);

  const std::uint32_t crc = result.survivor_param_crcs[0];
  EXPECT_NE(crc, 0u);
  for (const int rank : {2, 3, 5}) {
    EXPECT_EQ(result.survivor_param_crcs[static_cast<std::size_t>(rank)],
              crc)
        << "rank " << rank << " diverged";
  }
  ASSERT_EQ(result.loss_history.size(), 7u);
  for (const double loss : result.loss_history) {
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(loss, 0.0);
  }
}

}  // namespace
}  // namespace exaclim
