#include <gtest/gtest.h>

#include "flops/cost.hpp"
#include "flops/opspec.hpp"

namespace exaclim {
namespace {

// --------------------------------------------------------- ConvFlops ----

TEST(ConvFlops, ReproducesSecVIExample) {
  // Sec VI: "a 3×3 direct convolution on a 1152×768 image with 48 input
  // channels, 32 output channels and a batch size of 2 requires
  // 3*3*1152*768*48*32*2*2 = 48.9e9 FLOPs."
  const double flops = ConvFlops(3, 768, 1152, 48, 32, 2);
  EXPECT_NEAR(flops, 48.9e9, 0.1e9);
  EXPECT_DOUBLE_EQ(flops, 3.0 * 3 * 1152 * 768 * 48 * 32 * 2 * 2);
}

// --------------------------------------------- Spec vs model agreement --

TEST(SpecAgreement, TiramisuParamsMatchRealModel) {
  for (const auto& cfg :
       {Tiramisu::Config::Downscaled(4), Tiramisu::Config::Original(),
        Tiramisu::Config::Modified()}) {
    Rng rng(1);
    Tiramisu model(cfg, rng);
    const ArchSpec spec = BuildTiramisuSpec(cfg, 64, 64);
    EXPECT_EQ(spec.TotalParams(), model.ParameterCount())
        << "growth=" << cfg.growth_rate;
  }
}

TEST(SpecAgreement, DeepLabParamsMatchRealModel) {
  for (const auto& cfg : {DeepLabV3Plus::Config::Downscaled(4),
                          DeepLabV3Plus::Config::Paper(16)}) {
    Rng rng(1);
    DeepLabV3Plus model(cfg, rng);
    const ArchSpec spec = BuildDeepLabSpec(cfg, 64, 64);
    EXPECT_EQ(spec.TotalParams(), model.ParameterCount())
        << "stem=" << cfg.encoder.stem_features;
  }
}

TEST(SpecAgreement, QuarterResDecoderVariantParamsMatch) {
  auto cfg = DeepLabV3Plus::Config::Downscaled(4);
  cfg.full_res_decoder = false;
  Rng rng(1);
  DeepLabV3Plus model(cfg, rng);
  const ArchSpec spec = BuildDeepLabSpec(cfg, 64, 64);
  EXPECT_EQ(spec.TotalParams(), model.ParameterCount());
}

TEST(SpecAgreement, FinalOpRestoresInputResolution) {
  const ArchSpec t = PaperTiramisuSpec(16);
  EXPECT_EQ(t.ops.back().out_h, 768);
  EXPECT_EQ(t.ops.back().out_w, 1152);
  const ArchSpec d = PaperDeepLabSpec(16);
  EXPECT_EQ(d.ops.back().out_h, 768);
  EXPECT_EQ(d.ops.back().out_w, 1152);
  EXPECT_EQ(d.ops.back().out_c, 3);
}

// ----------------------------------------------------- AnalyzeTraining --

TEST(AnalyzeTraining, BackwardConvIsTwiceForward) {
  // Data gradient + weight gradient each cost one forward's FLOPs —
  // visible in Fig 8/9 where backward conv TF is exactly 2x forward.
  const ArchSpec spec = PaperTiramisuSpec(16);
  const TrainingCost cost = AnalyzeTraining(spec, Precision::kFP32, 1);
  EXPECT_NEAR(cost.at(KernelCategory::kBwdConv).flops /
                  cost.at(KernelCategory::kFwdConv).flops,
              2.0, 1e-9);
}

TEST(AnalyzeTraining, OpCountPerSampleIndependentOfBatch) {
  const ArchSpec spec = PaperTiramisuSpec(16);
  const TrainingCost b1 = AnalyzeTraining(spec, Precision::kFP32, 1);
  const TrainingCost b2 = AnalyzeTraining(spec, Precision::kFP32, 2);
  EXPECT_NEAR(b1.ConvFlopsPerSample(), b2.ConvFlopsPerSample(), 1.0);
}

TEST(AnalyzeTraining, FP16HalvesActivationTraffic) {
  const ArchSpec spec = PaperDeepLabSpec(16);
  const TrainingCost fp32 = AnalyzeTraining(spec, Precision::kFP32, 1);
  const TrainingCost fp16 = AnalyzeTraining(spec, Precision::kFP16, 1);
  EXPECT_LT(fp16.at(KernelCategory::kFwdConv).bytes,
            fp32.at(KernelCategory::kFwdConv).bytes * 0.6);
  // FP16 adds conversion kernels; FP32 has none.
  EXPECT_EQ(fp32.at(KernelCategory::kConvert).kernels, 0);
  EXPECT_GT(fp16.at(KernelCategory::kConvert).kernels, 0);
}

TEST(AnalyzeTraining, Fig2OperationCountsSameRegime) {
  // Fig 2 reports 4.188 TF/sample (Tiramisu) and 14.41 (DeepLabv3+);
  // with the architectures as best reconstructable from the paper our
  // counts land in the same order of magnitude, and — the structural
  // check — the DeepLab/Tiramisu ratio (3.44x in the paper) is
  // preserved.
  const TrainingCost tiramisu =
      AnalyzeTraining(PaperTiramisuSpec(16), Precision::kFP32, 1);
  const TrainingCost deeplab =
      AnalyzeTraining(PaperDeepLabSpec(16), Precision::kFP32, 1);
  const double t_tf = tiramisu.ConvFlopsPerSample() / 1e12;
  const double d_tf = deeplab.ConvFlopsPerSample() / 1e12;
  EXPECT_GT(t_tf, 0.4);
  EXPECT_LT(t_tf, 8.0);
  EXPECT_GT(d_tf, 2.0);
  EXPECT_LT(d_tf, 25.0);
  EXPECT_NEAR(d_tf / t_tf, 14.41 / 4.188, 1.5);
}

TEST(AnalyzeTraining, PizDaint4ChannelTiramisuIsCheaper) {
  // Fig 2 footnote: the Piz Daint Tiramisu used 4 of 16 channels,
  // lowering the op count (3.703 vs 4.188 TF in the paper — only the
  // first conv changes).
  Tiramisu::Config cfg16 = Tiramisu::Config::Modified();
  Tiramisu::Config cfg4 = cfg16;
  cfg4.in_channels = 4;
  const TrainingCost full = AnalyzeTraining(
      BuildTiramisuSpec(cfg16, 768, 1152), Precision::kFP32, 1);
  const TrainingCost sub = AnalyzeTraining(
      BuildTiramisuSpec(cfg4, 768, 1152), Precision::kFP32, 1);
  const double ratio = sub.ConvFlopsPerSample() / full.ConvFlopsPerSample();
  EXPECT_LT(ratio, 1.0);
  EXPECT_GT(ratio, 0.80);  // paper: 3.703/4.188 = 0.88
}

TEST(AnalyzeTraining, ConvsDominateCompute) {
  // Figs 8/9: convolutions carry essentially all FLOPs; pointwise ops
  // are memory-bound with negligible math.
  for (const auto& spec : {PaperTiramisuSpec(16), PaperDeepLabSpec(16)}) {
    const TrainingCost cost = AnalyzeTraining(spec, Precision::kFP32, 1);
    const double conv_flops = cost.at(KernelCategory::kFwdConv).flops +
                              cost.at(KernelCategory::kBwdConv).flops;
    EXPECT_GT(conv_flops / cost.TotalFlops(), 0.97) << spec.name;
  }
}

TEST(AnalyzeTraining, DeepLabHasHigherComputeIntensityThanTiramisu) {
  // The Sec VII-A finding: Tiramisu's small per-layer filter counts make
  // it memory-limited; DeepLabv3+'s large channel counts give higher
  // FLOPs-per-byte.
  const TrainingCost tiramisu =
      AnalyzeTraining(PaperTiramisuSpec(16), Precision::kFP32, 1);
  const TrainingCost deeplab =
      AnalyzeTraining(PaperDeepLabSpec(16), Precision::kFP32, 1);
  const double t_intensity = tiramisu.TotalFlops() / tiramisu.TotalBytes();
  const double d_intensity = deeplab.TotalFlops() / deeplab.TotalBytes();
  EXPECT_GT(d_intensity, t_intensity * 1.5);
}

TEST(AnalyzeTraining, AllreduceBytesScaleWithParams) {
  const ArchSpec small = BuildTiramisuSpec(Tiramisu::Config::Downscaled(4),
                                           64, 64);
  const ArchSpec large = PaperDeepLabSpec(16);
  const TrainingCost cs = AnalyzeTraining(small, Precision::kFP32, 1);
  const TrainingCost cl = AnalyzeTraining(large, Precision::kFP32, 1);
  EXPECT_NEAR(cs.at(KernelCategory::kAllreduce).bytes,
              2.0 * static_cast<double>(small.TotalParams()) * 4, 1.0);
  EXPECT_GT(cl.at(KernelCategory::kAllreduce).bytes,
            cs.at(KernelCategory::kAllreduce).bytes * 100);
}

TEST(ArchSpec, OpKindCounts) {
  const ArchSpec spec = PaperDeepLabSpec(16);
  // ResNet-50: 53 convs + projections; ASPP 5; decoder ~8.
  EXPECT_GT(spec.CountOps(OpSpec::Kind::kConv), 60);
  EXPECT_EQ(spec.CountOps(OpSpec::Kind::kDeconv), 3);  // Fig 1: 3 deconvs
  EXPECT_GT(spec.CountOps(OpSpec::Kind::kNorm), 50);
  const ArchSpec quarter = [] {
    auto cfg = DeepLabV3Plus::Config::Paper(16);
    cfg.full_res_decoder = false;
    return BuildDeepLabSpec(cfg, 768, 1152);
  }();
  EXPECT_EQ(quarter.CountOps(OpSpec::Kind::kDeconv), 1);
  EXPECT_EQ(quarter.CountOps(OpSpec::Kind::kUpsample), 1);
}

TEST(AnalyzeTraining, FullResDecoderCostsMoreThanQuarterRes) {
  // Sec V-B5: the standard DeepLabv3+ predicts at 1/4 resolution to keep
  // compute tractable; the paper's full-res decoder buys fidelity with
  // FLOPs.
  auto full_cfg = DeepLabV3Plus::Config::Paper(16);
  auto quarter_cfg = full_cfg;
  quarter_cfg.full_res_decoder = false;
  const TrainingCost full = AnalyzeTraining(
      BuildDeepLabSpec(full_cfg, 768, 1152), Precision::kFP32, 1);
  const TrainingCost quarter = AnalyzeTraining(
      BuildDeepLabSpec(quarter_cfg, 768, 1152), Precision::kFP32, 1);
  EXPECT_GT(full.ConvFlopsPerSample(), quarter.ConvFlopsPerSample() * 1.1);
}

}  // namespace
}  // namespace exaclim
