// Fault-injection and fault-tolerance layer tests (DESIGN §8): the
// injector and retry policy themselves, comm timeouts and rank death,
// staging owner-failure degradation, pipeline producer recovery, and
// checksummed atomic checkpoints with epoch resume.
//
// Every test that arms the global injector wraps itself in FaultScope so
// state can never leak between tests (the injector is process-global).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "comm/world.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "io/ncf.hpp"
#include "io/pipeline.hpp"
#include "io/staging.hpp"
#include "models/tiramisu.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "train/checkpoint.hpp"
#include "train/epoch.hpp"

namespace exaclim {
namespace {

namespace fs = std::filesystem;

struct FaultScope {
  FaultScope() { FaultInjector::Global().Reset(); }
  ~FaultScope() { FaultInjector::Global().Reset(); }
};

FaultSpec Spec(std::string site, double probability = 1.0,
               std::uint64_t seed = 0, int max_triggers = -1) {
  FaultSpec s;
  s.site = std::move(site);
  s.probability = probability;
  s.seed = seed;
  s.max_triggers = max_triggers;
  return s;
}

// ------------------------------------------------------- FaultInjector --

TEST(FaultInjector, UnarmedSiteNeverFires) {
  FaultScope scope;
  auto& inj = FaultInjector::Global();
  EXPECT_EQ(inj.ArmedSiteCount(), 0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(inj.ShouldInject("nope"));
  EXPECT_EQ(inj.TotalInjections(), 0);
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultScope scope;
  auto& inj = FaultInjector::Global();
  const auto draw = [&](std::uint64_t seed) {
    inj.Reset();
    inj.Arm(Spec("x", 0.5, seed));
    std::vector<bool> decisions;
    for (int i = 0; i < 200; ++i) decisions.push_back(inj.ShouldInject("x"));
    return decisions;
  };
  const auto a = draw(42);
  const auto b = draw(42);
  const auto c = draw(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // A p=0.5 stream over 200 draws fires a sane number of times.
  const auto fired = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 50);
  EXPECT_LT(fired, 150);
}

TEST(FaultInjector, MaxTriggersBoundsInjections) {
  FaultScope scope;
  auto& inj = FaultInjector::Global();
  inj.Arm(Spec("x", 1.0, 0, 3));
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += inj.ShouldInject("x") ? 1 : 0;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(inj.InjectionCount("x"), 3);
  EXPECT_EQ(inj.TotalInjections(), 3);
}

TEST(FaultInjector, SkipFirstPinsTheFault) {
  FaultScope scope;
  auto& inj = FaultInjector::Global();
  FaultSpec spec = Spec("x", 1.0, 0, 1);
  spec.skip_first = 5;
  inj.Arm(spec);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(inj.ShouldInject("x")) << i;
  EXPECT_TRUE(inj.ShouldInject("x"));
  EXPECT_FALSE(inj.ShouldInject("x"));  // budget spent
}

TEST(FaultInjector, DisarmAndReset) {
  FaultScope scope;
  auto& inj = FaultInjector::Global();
  inj.Arm(Spec("a"));
  inj.Arm(Spec("b"));
  EXPECT_EQ(inj.ArmedSiteCount(), 2);
  inj.Disarm("a");
  EXPECT_FALSE(inj.IsArmed("a"));
  EXPECT_TRUE(inj.IsArmed("b"));
  inj.Reset();
  EXPECT_EQ(inj.ArmedSiteCount(), 0);
}

TEST(FaultInjector, ArmFromStringParsesTheGrammar) {
  FaultScope scope;
  auto& inj = FaultInjector::Global();
  EXPECT_EQ(inj.ArmFromString("comm.delay:0.5:7:3:0.25:2,comm.kill.1:1"), 2);
  EXPECT_TRUE(inj.IsArmed("comm.delay"));
  EXPECT_TRUE(inj.IsArmed("comm.kill.1"));
  EXPECT_DOUBLE_EQ(inj.DelaySeconds("comm.delay"), 0.25);
  EXPECT_DOUBLE_EQ(inj.DelaySeconds("comm.kill.1"), 0.0);
}

TEST(FaultInjector, ArmFromStringRejectsMalformedSpecs) {
  FaultScope scope;
  auto& inj = FaultInjector::Global();
  EXPECT_THROW(inj.ArmFromString("siteonly"), Error);
  EXPECT_THROW(inj.ArmFromString("fs.read:notanumber"), Error);
  EXPECT_THROW(inj.ArmFromString("fs.read:2.0"), Error);  // probability > 1
}

TEST(FaultInjector, ArmFromStringRejectsUnknownSitesListingValidOnes) {
  FaultScope scope;
  auto& inj = FaultInjector::Global();
  // A typo'd site would arm silently and never fire — the parse layer
  // fails fast and names the whole vocabulary instead.
  try {
    inj.ArmFromString("comm.kil.1:1");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("comm.kil.1"), std::string::npos);
    EXPECT_NE(what.find("comm.kill.<rank>"), std::string::npos);
    EXPECT_NE(what.find("elastic.exchange.kill.<rank>"), std::string::npos);
    EXPECT_NE(what.find("pipeline.produce"), std::string::npos);
  }
  EXPECT_EQ(inj.ArmedSiteCount(), 0);
  // Parameterized kill sites take a rank number, nothing else.
  EXPECT_THROW(inj.ArmFromString("elastic.kill.x:1"), Error);
  EXPECT_THROW(inj.ArmFromString("elastic.kill.:1"), Error);
  // Programmatic Arm stays free-form (tests use synthetic sites), and
  // RegisterFaultSite extends the env vocabulary.
  inj.Arm(Spec("synthetic.site"));
  EXPECT_TRUE(inj.IsArmed("synthetic.site"));
  RegisterFaultSite("test.registered");
  EXPECT_EQ(inj.ArmFromString("test.registered:1"), 1);
  EXPECT_TRUE(inj.IsArmed("test.registered"));
}

// -------------------------------------------------------- RetryPolicy --

TEST(RetryPolicy, ScheduleIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_s = 0.01;
  policy.multiplier = 2.0;
  policy.max_backoff_s = 0.05;
  policy.jitter = 0.1;
  const auto a = policy.Schedule();
  const auto b = policy.Schedule();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a, b);
  // Jitter keeps each entry within ±10% of the un-jittered exponential.
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double base = std::min(0.01 * std::pow(2.0, double(i)), 0.05);
    EXPECT_GE(a[i], base * 0.9 - 1e-12) << i;
    EXPECT_LE(a[i], base * 1.1 + 1e-12) << i;
  }
}

TEST(RetryPolicy, NoJitterScheduleIsMonotoneAndCapped) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_s = 1e-3;
  policy.max_backoff_s = 8e-3;
  policy.jitter = 0.0;
  const auto schedule = policy.Schedule();
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i], schedule[i - 1]);
  }
  EXPECT_DOUBLE_EQ(schedule.back(), 8e-3);
}

TEST(RetryPolicy, RunWithRetrySucceedsAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_s = 1e-4;
  policy.max_backoff_s = 1e-3;
  int calls = 0;
  const auto outcome = RunWithRetry(policy, "test", [&] {
    return ++calls >= 3;
  });
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_GT(outcome.slept_seconds, 0.0);
}

TEST(RetryPolicy, RunWithRetryGivesUpAtMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_s = 1e-4;
  policy.max_backoff_s = 1e-4;
  int calls = 0;
  const auto outcome = RunWithRetry(policy, "test", [&] {
    ++calls;
    return false;
  });
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicy, DeadlineStopsRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_s = 0.05;
  policy.max_backoff_s = 0.05;
  policy.deadline_s = 0.12;
  int calls = 0;
  const auto outcome = RunWithRetry(policy, "test", [&] {
    ++calls;
    return false;
  });
  EXPECT_FALSE(outcome.success);
  EXPECT_LT(calls, 10);  // nowhere near 100 attempts
}

// ---------------------------------------------------------- comm layer --

TEST(CommFault, RecvTimeoutExpiresWithNoSender) {
  SimWorld world(2);
  world.Run([&](Communicator& comm) {
    if (comm.rank() != 0) return;
    const auto start = std::chrono::steady_clock::now();
    const RecvResult r = comm.RecvTimeout(1, 5, 0.05);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_EQ(r.status, RecvStatus::kTimeout);
    EXPECT_GE(waited, 0.04);
  });
}

TEST(CommFault, TryRecvIsNonBlocking) {
  SimWorld world(1);
  world.Run([&](Communicator& comm) {
    EXPECT_EQ(comm.TryRecv(0, 5).status, RecvStatus::kTimeout);
    comm.SendValue(0, 5, 17);
    const RecvResult r = comm.TryRecv(0, 5);
    ASSERT_TRUE(r.ok());
    int v = 0;
    ASSERT_EQ(r.payload.size(), sizeof(int));
    std::memcpy(&v, r.payload.data(), sizeof(int));
    EXPECT_EQ(v, 17);
  });
}

TEST(CommFault, DelayedMessageArrivesAfterHold) {
  FaultScope scope;
  FaultSpec delay = Spec("comm.delay", 1.0, 0, 1);
  delay.delay_seconds = 0.05;
  FaultInjector::Global().Arm(delay);
  SimWorld world(2);
  world.Run([&](Communicator& comm) {
    if (comm.rank() == 1) {
      comm.SendValue(0, 5, 99);
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    int v = 0;
    const RecvStatus status = comm.RecvValueTimeout(1, 5, 2.0, &v);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_EQ(status, RecvStatus::kOk);
    EXPECT_EQ(v, 99);
    EXPECT_GE(waited, 0.04);
  });
  EXPECT_EQ(FaultInjector::Global().InjectionCount("comm.delay"), 1);
}

TEST(CommFault, DroppedMessageNeverArrives) {
  FaultScope scope;
  FaultInjector::Global().Arm(Spec("comm.drop", 1.0, 0, 1));
  SimWorld world(2);
  world.Run([&](Communicator& comm) {
    if (comm.rank() == 1) {
      comm.SendValue(0, 5, 1);  // dropped (the single trigger)
      comm.SendValue(0, 5, 2);  // delivered
      return;
    }
    int v = 0;
    ASSERT_EQ(comm.RecvValueTimeout(1, 5, 2.0, &v), RecvStatus::kOk);
    EXPECT_EQ(v, 2);
    EXPECT_EQ(comm.RecvTimeout(1, 5, 0.05).status, RecvStatus::kTimeout);
  });
  EXPECT_EQ(FaultInjector::Global().InjectionCount("comm.drop"), 1);
}

TEST(CommFault, KilledPeerReportsPeerDead) {
  SimWorld world(2);
  world.Run([&](Communicator& comm) {
    if (comm.rank() == 1) {
      world.KillRank(1);
      return;
    }
    // Generous deadline: kPeerDead must arrive well before it.
    const auto start = std::chrono::steady_clock::now();
    const RecvResult r = comm.RecvTimeout(1, 5, 10.0);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_EQ(r.status, RecvStatus::kPeerDead);
    EXPECT_LT(waited, 5.0);
    EXPECT_TRUE(comm.PeerDead(1));
    // A blocking receive from a dead rank can never complete: loud error
    // instead of a silent hang.
    EXPECT_THROW((void)comm.RecvValue<int>(1, 5), Error);
  });
}

TEST(CommFault, ArmedKillSiteKillsRankAtRunEntry) {
  FaultScope scope;
  FaultInjector::Global().Arm(Spec("comm.kill.2", 1.0, 7));
  std::atomic<int> ran{0};
  SimWorld world(4);
  world.Run([&](Communicator& comm) {
    ran.fetch_add(1);
    if (comm.rank() == 0) {
      // The killed rank is observably dead to survivors.
      const RecvResult r = comm.RecvTimeout(2, 5, 5.0);
      EXPECT_EQ(r.status, RecvStatus::kPeerDead);
    }
  });
  EXPECT_EQ(ran.load(), 3);  // rank 2's function never ran
  EXPECT_EQ(FaultInjector::Global().InjectionCount("comm.kill.2"), 1);
}

TEST(CommFault, SendToDeadRankIsDropped) {
  SimWorld world(2);
  world.Run([&](Communicator& comm) {
    if (comm.rank() == 1) {
      world.KillRank(1);
      return;
    }
    while (!comm.PeerDead(1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    comm.SendValue(1, 5, 3);  // silently dropped, no crash
  });
}

// ------------------------------------------------------- staging layer --

void FillFs(MockGlobalFs& store, int num_files) {
  for (int f = 0; f < num_files; ++f) {
    std::vector<std::byte> contents(16 + static_cast<std::size_t>(f));
    for (std::size_t i = 0; i < contents.size(); ++i) {
      contents[i] =
          static_cast<std::byte>((f * 7 + static_cast<int>(i)) % 251);
    }
    store.Put(f, std::move(contents));
  }
}

bool ContentsCorrect(int f, const std::vector<std::byte>& contents) {
  if (contents.size() != 16 + static_cast<std::size_t>(f)) return false;
  for (std::size_t i = 0; i < contents.size(); ++i) {
    if (contents[i] !=
        static_cast<std::byte>((f * 7 + static_cast<int>(i)) % 251)) {
      return false;
    }
  }
  return true;
}

StagingFtOptions TightFt() {
  StagingFtOptions ft;
  ft.count_timeout_s = 0.05;
  ft.serve_timeout_s = 0.05;
  ft.file_timeout_s = 0.05;
  ft.retry.max_attempts = 2;
  ft.retry.initial_backoff_s = 1e-3;
  ft.retry.max_backoff_s = 5e-3;
  return ft;
}

TEST(StagingFt, OneKilledOwnerDegradesOnlyItsShard) {
  FaultScope scope;
  FaultInjector::Global().Arm(Spec("comm.kill.1", 1.0, 7));
  const int p = 4;
  const int num_files = 8;
  MockGlobalFs store;
  FillFs(store, num_files);
  // Every rank needs every file, so rank 1's shard {1, 5} is on every
  // survivor's critical path.
  std::set<int> needs;
  for (int f = 0; f < num_files; ++f) needs.insert(f);

  std::atomic<int> wrong{0};
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    const auto staged = StageDataset(comm, store, needs, num_files, TightFt());
    EXPECT_EQ(staged.size(), needs.size());
    for (const auto& [f, contents] : staged) {
      if (!ContentsCorrect(f, contents)) wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0);
  // Dead owner's files: one degraded read per survivor. Everything else:
  // exactly once (the exactly-once property is confined to live shards).
  for (const int f : needs) {
    if (f % p == 1) {
      EXPECT_EQ(store.reads(f), p - 1) << "file " << f;
    } else {
      EXPECT_EQ(store.reads(f), 1) << "file " << f;
    }
  }
}

TEST(StagingFt, TwoKilledOwnersStillComplete) {
  FaultScope scope;
  FaultInjector::Global().ArmFromString("comm.kill.1:1:7,comm.kill.4:1:9");
  const int p = 6;
  const int num_files = 12;
  MockGlobalFs store;
  FillFs(store, num_files);
  std::set<int> needs;
  for (int f = 0; f < num_files; ++f) needs.insert(f);

  std::atomic<int> wrong{0};
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    const auto staged = StageDataset(comm, store, needs, num_files, TightFt());
    EXPECT_EQ(staged.size(), needs.size());
    for (const auto& [f, contents] : staged) {
      if (!ContentsCorrect(f, contents)) wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0);
  for (const int f : needs) {
    const int owner = f % p;
    if (owner == 1 || owner == 4) {
      EXPECT_EQ(store.reads(f), p - 2) << "file " << f;
    } else {
      EXPECT_EQ(store.reads(f), 1) << "file " << f;
    }
  }
}

TEST(StagingFt, UnresponsiveOwnerIsDegradedByTimeout) {
  // Rank 2 is alive but never enters the staging protocol — the
  // worst case for deadlock: no dead flag, just silence.
  const int p = 3;
  const int num_files = 6;
  MockGlobalFs store;
  FillFs(store, num_files);
  std::set<int> needs;
  for (int f = 0; f < num_files; ++f) needs.insert(f);

  std::atomic<int> wrong{0};
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    if (comm.rank() == 2) return;  // silent, not dead
    const auto staged = StageDataset(comm, store, needs, num_files, TightFt());
    EXPECT_EQ(staged.size(), needs.size());
    for (const auto& [f, contents] : staged) {
      if (!ContentsCorrect(f, contents)) wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0);
  for (const int f : needs) {
    if (f % p == 2) {
      EXPECT_EQ(store.reads(f), 2) << "file " << f;  // both survivors
    } else {
      EXPECT_EQ(store.reads(f), 1) << "file " << f;
    }
  }
}

TEST(StagingFt, DegradedModeOffMakesOwnerDeathFatal) {
  FaultScope scope;
  FaultInjector::Global().Arm(Spec("comm.kill.1", 1.0, 7));
  const int p = 2;
  MockGlobalFs store;
  FillFs(store, 4);
  std::set<int> needs{0, 1};  // file 1 is owned by the dead rank

  std::atomic<int> threw{0};
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    StagingFtOptions ft = TightFt();
    ft.allow_degraded = false;
    try {
      (void)StageDataset(comm, store, needs, 4, ft);
    } catch (const Error&) {
      threw.fetch_add(1);
    }
  });
  EXPECT_EQ(threw.load(), 1);
}

TEST(StagingFt, TransientFsReadFaultsAreRetried) {
  FaultScope scope;
  // Two injected read failures, then the fs recovers: the serve-side
  // RunWithRetry absorbs them without degrading anything.
  FaultInjector::Global().Arm(Spec("fs.read", 1.0, 3, 2));
  const int p = 2;
  const int num_files = 4;
  MockGlobalFs store;
  FillFs(store, num_files);
  std::set<int> needs;
  for (int f = 0; f < num_files; ++f) needs.insert(f);

  std::atomic<int> wrong{0};
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    StagingFtOptions ft = TightFt();
    ft.retry.max_attempts = 4;
    const auto staged = StageDataset(comm, store, needs, num_files, ft);
    EXPECT_EQ(staged.size(), needs.size());
    for (const auto& [f, contents] : staged) {
      if (!ContentsCorrect(f, contents)) wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(FaultInjector::Global().InjectionCount("fs.read"), 2);
}

TEST(StagingFt, HealthyPathKeepsExactlyOnceWithDefaults) {
  // No faults armed, default (generous) ft options: behaviour must be
  // byte-identical to the original non-FT stager.
  const int p = 4;
  const int num_files = 10;
  MockGlobalFs store;
  FillFs(store, num_files);
  std::vector<std::set<int>> needs(p);
  for (int r = 0; r < p; ++r) {
    Rng rng(50 + r);
    for (int k = 0; k < 6; ++k) {
      needs[static_cast<std::size_t>(r)].insert(
          static_cast<int>(rng.Int(0, num_files - 1)));
    }
  }
  std::set<int> union_needs;
  for (const auto& s : needs) union_needs.insert(s.begin(), s.end());

  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    const auto staged = StageDataset(
        comm, store, needs[static_cast<std::size_t>(comm.rank())], num_files);
    EXPECT_EQ(staged.size(),
              needs[static_cast<std::size_t>(comm.rank())].size());
  });
  EXPECT_EQ(store.total_reads(),
            static_cast<std::int64_t>(union_needs.size()));
  for (const int f : union_needs) EXPECT_EQ(store.reads(f), 1);
}

// ------------------------------------------------------ pipeline layer --

Batch MakeBatch(std::int64_t index) {
  Batch b;
  b.fields = Tensor(TensorShape::NCHW(1, 1, 2, 2));
  b.fields.Data()[0] = static_cast<float>(index);
  return b;
}

TEST(PipelineFault, PermanentProducerFailureIsSurfacedNotFatal) {
  // Satellite regression: a producer that always throws for one index
  // must neither terminate the process nor strand Next() callers.
  InputPipeline::Options opts;
  opts.workers = 2;
  opts.prefetch_depth = 2;
  opts.producer_retries = 1;
  InputPipeline pipeline(
      [](std::int64_t index) {
        if (index == 3) throw Error("producer exploded on 3");
        return MakeBatch(index);
      },
      8, opts);

  int batches = 0;
  int errors = 0;
  for (;;) {
    try {
      const auto batch = pipeline.Next();
      if (!batch.has_value()) break;
      ++batches;
    } catch (const Error&) {
      ++errors;
    }
  }
  EXPECT_EQ(batches, 7);
  EXPECT_EQ(errors, 1);
  const PipelineStats stats = pipeline.Stats();
  EXPECT_EQ(stats.skipped, 1);
  EXPECT_EQ(stats.producer_failures, 1);
  EXPECT_EQ(stats.producer_retries, 1);  // one failed retry of index 3
  EXPECT_EQ(stats.consumed, 7);
}

TEST(PipelineFault, TransientProducerFailureIsRetriedToSuccess) {
  std::atomic<bool> failed_once{false};
  InputPipeline::Options opts;
  opts.workers = 2;
  opts.producer_retries = 2;
  InputPipeline pipeline(
      [&](std::int64_t index) {
        if (index == 2 && !failed_once.exchange(true)) {
          throw Error("transient");
        }
        return MakeBatch(index);
      },
      6, opts);
  int batches = 0;
  while (pipeline.Next().has_value()) ++batches;
  EXPECT_EQ(batches, 6);
  const PipelineStats stats = pipeline.Stats();
  EXPECT_EQ(stats.skipped, 0);
  EXPECT_EQ(stats.producer_failures, 0);
  EXPECT_EQ(stats.producer_retries, 1);
}

TEST(PipelineFault, InjectedProducerFaultsAreDeterministic) {
  FaultScope scope;
  // 4 guaranteed fires, single worker, 2 retries per batch: batch 0
  // burns 3 attempts and is skipped; batch 1 burns the 4th fire and
  // succeeds on its first retry.
  FaultInjector::Global().Arm(Spec("pipeline.produce", 1.0, 11, 4));
  InputPipeline::Options opts;
  opts.workers = 1;
  opts.producer_retries = 2;
  InputPipeline pipeline(MakeBatch, 6, opts);
  int batches = 0;
  int errors = 0;
  for (;;) {
    try {
      if (!pipeline.Next().has_value()) break;
      ++batches;
    } catch (const Error&) {
      ++errors;
    }
  }
  EXPECT_EQ(batches, 5);
  EXPECT_EQ(errors, 1);
  const PipelineStats stats = pipeline.Stats();
  EXPECT_EQ(stats.skipped, 1);
  EXPECT_EQ(stats.producer_failures, 1);
  EXPECT_EQ(stats.producer_retries, 3);
  EXPECT_EQ(FaultInjector::Global().InjectionCount("pipeline.produce"), 4);
}

TEST(PipelineFault, MultipleConsumersDrainDespiteFailures) {
  InputPipeline::Options opts;
  opts.workers = 3;
  opts.prefetch_depth = 4;
  opts.producer_retries = 1;
  InputPipeline pipeline(
      [](std::int64_t index) {
        if (index == 5 || index == 11) throw Error("permanent");
        return MakeBatch(index);
      },
      16, opts);

  std::atomic<int> batches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> consumers;
  for (int t = 0; t < 3; ++t) {
    consumers.emplace_back([&] {
      for (;;) {
        try {
          if (!pipeline.Next().has_value()) return;
          batches.fetch_add(1);
        } catch (const Error&) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : consumers) c.join();
  EXPECT_EQ(batches.load(), 14);
  EXPECT_EQ(errors.load(), 2);
  EXPECT_EQ(pipeline.Stats().skipped, 2);
}

// ---------------------------------------------------- checkpoint layer --

class CheckpointFault : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    dir_ = fs::temp_directory_path() /
           ("exaclim_fault_ckpt_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::Global().Reset();
    fs::remove_all(dir_);
  }
  fs::path dir_;
};

TEST_F(CheckpointFault, RoundTripWithMetaAndChecksums) {
  Rng rng(1);
  Tiramisu model(Tiramisu::Config::Downscaled(4), rng);
  const auto path = dir_ / "model.ncf";
  SaveCheckpoint(path, model.Params(), {{"epoch", 7.0}, {"step", 140.0}});
  EXPECT_FALSE(fs::exists(dir_ / "model.ncf.tmp"));  // renamed away

  Rng rng2(999);
  Tiramisu restored(Tiramisu::Config::Downscaled(4), rng2);
  std::map<std::string, double> meta;
  LoadCheckpoint(path, restored.Params(), &meta);
  EXPECT_DOUBLE_EQ(meta.at("epoch"), 7.0);
  EXPECT_DOUBLE_EQ(meta.at("step"), 140.0);

  const auto a = model.Params();
  const auto b = restored.Params();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto av = a[i]->value.Data();
    const auto bv = b[i]->value.Data();
    ASSERT_EQ(av.size(), bv.size());
    for (std::size_t j = 0; j < av.size(); ++j) {
      ASSERT_EQ(av[j], bv[j]) << a[i]->name << "[" << j << "]";
    }
  }
}

TEST_F(CheckpointFault, CorruptByteIsRejected) {
  Rng rng(1);
  Tiramisu model(Tiramisu::Config::Downscaled(4), rng);
  const auto path = dir_ / "model.ncf";
  SaveCheckpoint(path, model.Params(), {{"epoch", 1.0}});

  // Flip one byte in the middle of the file (parameter payload).
  const auto size = fs::file_size(path);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(size / 2));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(size / 2));
  f.write(&c, 1);
  f.close();

  std::map<std::string, double> meta;
  EXPECT_THROW(LoadCheckpoint(path, model.Params(), &meta), Error);
}

TEST_F(CheckpointFault, TruncatedFileIsRejected) {
  Rng rng(1);
  Tiramisu model(Tiramisu::Config::Downscaled(4), rng);
  const auto path = dir_ / "model.ncf";
  SaveCheckpoint(path, model.Params());
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_THROW(LoadCheckpoint(path, model.Params()), Error);
}

TEST_F(CheckpointFault, LegacyFooterlessFileStillLoads) {
  // Backward compatibility: a checkpoint written before the CRC footer
  // existed is a bare NCF container. It loads, unverified.
  Rng rng(1);
  Tiramisu model(Tiramisu::Config::Downscaled(4), rng);
  const auto path = dir_ / "legacy.ncf";
  {
    NcfWriter writer(path);
    for (const Param* p : model.Params()) {
      writer.AddFloat(p->name, p->value.Data());
    }
    writer.Finish();
  }
  Rng rng2(999);
  Tiramisu restored(Tiramisu::Config::Downscaled(4), rng2);
  LoadCheckpoint(path, restored.Params());
  const auto a = model.Params();
  const auto b = restored.Params();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto av = a[i]->value.Data();
    const auto bv = b[i]->value.Data();
    for (std::size_t j = 0; j < av.size(); ++j) {
      ASSERT_EQ(av[j], bv[j]);
    }
  }
}

TEST_F(CheckpointFault, InjectedWriteFaultPreservesLastGoodCheckpoint) {
  Rng rng(1);
  Tiramisu model(Tiramisu::Config::Downscaled(4), rng);
  const auto path = dir_ / "model.ncf";
  SaveCheckpoint(path, model.Params(), {{"epoch", 1.0}});

  FaultInjector::Global().Arm(Spec("checkpoint.write", 1.0, 5, 1));
  model.Params()[0]->value.Data()[0] += 1.0f;  // new state, never saved
  EXPECT_THROW(SaveCheckpoint(path, model.Params(), {{"epoch", 2.0}}),
               Error);

  // The published checkpoint is the old, intact one.
  Rng rng2(999);
  Tiramisu restored(Tiramisu::Config::Downscaled(4), rng2);
  std::map<std::string, double> meta;
  LoadCheckpoint(path, restored.Params(), &meta);
  EXPECT_DOUBLE_EQ(meta.at("epoch"), 1.0);
}

TEST_F(CheckpointFault, MissingDatasetErrorListsWhatIsPresent) {
  // Satellite: the NCF lookup failure is a recoverable Error naming the
  // datasets that ARE in the file.
  const auto path = dir_ / "two.ncf";
  {
    NcfWriter writer(path);
    const float v[2] = {1.0f, 2.0f};
    writer.AddFloat("alpha", std::span<const float>(v, 2));
    writer.AddFloat("beta", std::span<const float>(v, 2));
    writer.Finish();
  }
  NcfReader reader(path);
  try {
    (void)reader.Count("gamma");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gamma"), std::string::npos);
    EXPECT_NE(what.find("alpha"), std::string::npos);
    EXPECT_NE(what.find("beta"), std::string::npos);
  }
  EXPECT_THROW((void)reader.ReadFloat("gamma"), Error);
}

// --------------------------------------------------------- epoch layer --

class EpochFault : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    dir_ = fs::temp_directory_path() /
           ("exaclim_fault_epoch_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::Global().Reset();
    fs::remove_all(dir_);
  }

  static ClimateDataset::Options SmallData() {
    ClimateDataset::Options d;
    d.num_samples = 24;
    d.generator.height = 32;
    d.generator.width = 32;
    d.channels = {kTMQ, kU850, kV850, kPSL};
    return d;
  }

  // Stateless optimizer (plain SGD, no momentum/LARC/lag): resuming from
  // a params-only checkpoint retraces the uninterrupted trajectory
  // bit-for-bit.
  static TrainerOptions StatelessTrainer() {
    TrainerOptions o;
    o.arch = TrainerOptions::Arch::kTiramisu;
    o.tiramisu = Tiramisu::Config::Downscaled(4);
    o.optimizer = TrainerOptions::Opt::kSGD;
    o.momentum = 0.0f;
    o.use_larc = false;
    o.lag = 0;
    o.learning_rate = 2e-3f;
    o.local_batch = 2;
    return o;
  }

  static EpochRunnerOptions BaseOpts() {
    EpochRunnerOptions opts;
    opts.epochs = 4;
    opts.steps_per_epoch = 4;
    opts.validation_samples = 2;
    return opts;
  }

  fs::path dir_;
};

TEST_F(EpochFault, PeriodicCheckpointsAreWritten) {
  const ClimateDataset dataset(SmallData());
  EpochRunnerOptions opts = BaseOpts();
  opts.checkpoint_every = 2;
  opts.checkpoint_path = dir_ / "ckpt.ncf";
  const auto result = RunEpochs(StatelessTrainer(), dataset, opts);
  EXPECT_EQ(result.checkpoints_written, 2);  // after epochs 2 and 4
  EXPECT_FALSE(result.resumed);

  std::map<std::string, double> meta;
  Rng rng(StatelessTrainer().seed);
  Tiramisu probe(Tiramisu::Config::Downscaled(4), rng);
  LoadCheckpoint(opts.checkpoint_path, probe.Params(), &meta);
  EXPECT_DOUBLE_EQ(meta.at("epoch"), 4.0);
}

TEST_F(EpochFault, MidRunKillThenResumeMatchesUninterruptedRun) {
  const ClimateDataset dataset(SmallData());
  const TrainerOptions trainer = StatelessTrainer();

  // Reference: the uninterrupted 4-epoch trajectory.
  const auto reference = RunEpochs(trainer, dataset, BaseOpts());
  ASSERT_EQ(reference.train_loss.size(), 4u);

  // Interrupted run: checkpoint every epoch, die at epoch 2 step 0
  // (the injector's evaluated-counter has seen 2 epochs * 4 steps).
  EpochRunnerOptions opts = BaseOpts();
  opts.checkpoint_every = 1;
  opts.checkpoint_path = dir_ / "ckpt.ncf";
  FaultSpec kill = Spec("epoch.step", 1.0, 0, 1);
  kill.skip_first = 2 * opts.steps_per_epoch;
  FaultInjector::Global().Arm(kill);
  EXPECT_THROW(RunEpochs(trainer, dataset, opts), Error);
  FaultInjector::Global().Reset();

  // Resume: picks up after the last completed epoch and retraces the
  // reference trajectory exactly.
  opts.resume = true;
  const auto resumed = RunEpochs(trainer, dataset, opts);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.start_epoch, 2);
  ASSERT_EQ(resumed.train_loss.size(), 2u);
  EXPECT_DOUBLE_EQ(resumed.train_loss[0], reference.train_loss[2]);
  EXPECT_DOUBLE_EQ(resumed.train_loss[1], reference.train_loss[3]);
  // Batch-norm running statistics are checkpointed alongside the params
  // (Layer::StateTensors), so validation metrics are bit-exact too.
  ASSERT_EQ(resumed.validation_miou.size(), 2u);
  EXPECT_DOUBLE_EQ(resumed.validation_miou[0], reference.validation_miou[2]);
  EXPECT_DOUBLE_EQ(resumed.validation_miou[1], reference.validation_miou[3]);
}

TEST_F(EpochFault, CorruptCheckpointFallsBackToFreshStart) {
  const ClimateDataset dataset(SmallData());
  EpochRunnerOptions opts = BaseOpts();
  opts.epochs = 1;
  opts.steps_per_epoch = 2;
  opts.checkpoint_path = dir_ / "ckpt.ncf";
  opts.resume = true;
  {
    std::ofstream garbage(opts.checkpoint_path, std::ios::binary);
    garbage << "this is not an NCF container";
  }
  const auto result = RunEpochs(StatelessTrainer(), dataset, opts);
  EXPECT_FALSE(result.resumed);
  EXPECT_EQ(result.start_epoch, 0);
  EXPECT_EQ(result.train_loss.size(), 1u);
}

// -------------------------------------------------------- smoke + e2e --

// FaultSmoke runs under two regimes: plain ctest (arms its spec
// programmatically) and tools/ci.sh stage 6, which sets
// EXACLIM_FAULTS="comm.kill.1:1:7,pipeline.produce:1:11:4" to exercise
// the env-driven path. The assertions hold under exactly that spec.
TEST(FaultSmoke, EndToEndStagingAndPipelineWithInjectedFaults) {
  FaultScope scope;
  auto& inj = FaultInjector::Global();
  if (inj.ArmFromEnv() == 0) {
    inj.ArmFromString("comm.kill.1:1:7,pipeline.produce:1:11:4");
  }
  ASSERT_TRUE(inj.IsArmed("comm.kill.1"));
  ASSERT_TRUE(inj.IsArmed("pipeline.produce"));
  obs::Enable();

  // Stage with rank 1 dead: survivors degrade around its shard.
  const int p = 4;
  const int num_files = 8;
  MockGlobalFs store;
  FillFs(store, num_files);
  std::set<int> needs;
  for (int f = 0; f < num_files; ++f) needs.insert(f);
  std::atomic<int> wrong{0};
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    const auto staged = StageDataset(comm, store, needs, num_files, TightFt());
    EXPECT_EQ(staged.size(), needs.size());
    for (const auto& [f, contents] : staged) {
      if (!ContentsCorrect(f, contents)) wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(inj.InjectionCount("comm.kill.1"), 1);

  // Train-side input pipeline with deterministic producer faults
  // (single worker: batch 0 skipped, batch 1 recovered by retry).
  InputPipeline::Options opts;
  opts.workers = 1;
  opts.producer_retries = 2;
  InputPipeline pipeline(MakeBatch, 8, opts);
  int batches = 0;
  int errors = 0;
  for (;;) {
    try {
      if (!pipeline.Next().has_value()) break;
      ++batches;
    } catch (const Error&) {
      ++errors;
    }
  }
  EXPECT_EQ(batches, 7);
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(inj.InjectionCount("pipeline.produce"), 4);

  // The whole episode is visible in the metrics registry.
  const auto counter = [](const char* name) {
    obs::Counter* c = obs::CounterOrNull(name);
    return c == nullptr ? std::int64_t{0} : c->value();
  };
  EXPECT_GT(counter("fault.injected.comm.kill.1"), 0);
  EXPECT_GT(counter("fault.comm.rank_kills"), 0);
  EXPECT_GT(counter("fault.staging.degraded_files"), 0);
  EXPECT_GT(counter("fault.injected.pipeline.produce"), 0);
  EXPECT_GT(counter("fault.pipeline.producer_failures"), 0);
  EXPECT_GT(counter("fault.pipeline.producer_retries"), 0);
  obs::Disable();
}

// ------------------------------------------------------------- stress --

TEST(FaultStress, ConcurrentShouldInjectIsRaceFree) {
  FaultScope scope;
  auto& inj = FaultInjector::Global();
  inj.Arm(Spec("s0", 0.5, 1));
  inj.Arm(Spec("s1", 0.25, 2));
  inj.Arm(Spec("s2", 1.0, 3, 500));
  std::vector<std::thread> threads;
  std::atomic<std::int64_t> fired{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const char* sites[] = {"s0", "s1", "s2"};
      for (int i = 0; i < 1500; ++i) {
        if (inj.ShouldInject(sites[(t + i) % 3])) fired.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(inj.TotalInjections(), fired.load());
  EXPECT_GT(fired.load(), 0);
  EXPECT_EQ(inj.InjectionCount("s2"), 500);  // budget exactly respected
}

TEST(FaultStress, PipelineProducerFaultsUnderConcurrentLoad) {
  InputPipeline::Options opts;
  opts.workers = 4;
  opts.prefetch_depth = 4;
  opts.producer_retries = 1;
  const std::int64_t total = 120;
  InputPipeline pipeline(
      [](std::int64_t index) {
        if (index % 17 == 0) throw Error("permanent");
        return MakeBatch(index);
      },
      total, opts);
  std::atomic<int> batches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> consumers;
  for (int t = 0; t < 4; ++t) {
    consumers.emplace_back([&] {
      for (;;) {
        try {
          if (!pipeline.Next().has_value()) return;
          batches.fetch_add(1);
        } catch (const Error&) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : consumers) c.join();
  const int failing = 8;  // indices 0, 17, ..., 119
  EXPECT_EQ(errors.load(), failing);
  EXPECT_EQ(batches.load(), static_cast<int>(total) - failing);
  const PipelineStats stats = pipeline.Stats();
  EXPECT_EQ(stats.skipped, failing);
  EXPECT_EQ(stats.consumed + stats.skipped, total);
}

TEST(FaultStress, StagingSurvivesDropsAndAKilledOwner) {
  FaultScope scope;
  FaultInjector::Global().ArmFromString(
      "comm.kill.3:1:7,comm.drop:0.05:21");
  const int p = 4;
  const int num_files = 16;
  MockGlobalFs store;
  FillFs(store, num_files);
  std::set<int> needs;
  for (int f = 0; f < num_files; ++f) needs.insert(f);

  std::atomic<int> wrong{0};
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    StagingFtOptions ft = TightFt();
    ft.retry.max_attempts = 3;
    const auto staged = StageDataset(comm, store, needs, num_files, ft);
    EXPECT_EQ(staged.size(), needs.size());
    for (const auto& [f, contents] : staged) {
      if (!ContentsCorrect(f, contents)) wrong.fetch_add(1);
    }
  });
  // Whatever was dropped got degraded around: every rank has every file,
  // bytes intact.
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace exaclim
