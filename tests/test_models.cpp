#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gradcheck.hpp"
#include "models/deeplab.hpp"
#include "models/resnet.hpp"
#include "models/tiramisu.hpp"
#include "nn/loss.hpp"

namespace exaclim {
namespace {

using testing::CheckInputGradient;

Tensor RandomInput(TensorShape shape, std::uint64_t seed = 1) {
  Rng rng(seed);
  return Tensor::Uniform(std::move(shape), rng, -1.0f, 1.0f);
}

// Runs one full forward/backward and checks every parameter got a
// nonzero-ish gradient somewhere (i.e. the whole graph is connected).
void ExpectAllParamsReceiveGradients(Layer& model, const Tensor& input) {
  for (Param* p : model.Params()) p->grad.SetZero();
  const Tensor out = model.Forward(input, /*train=*/true);
  Rng rng(77);
  const Tensor seed = Tensor::Uniform(out.shape(), rng, -1.0f, 1.0f);
  (void)model.Backward(seed);
  for (Param* p : model.Params()) {
    EXPECT_GT(p->grad.Norm(), 0.0f) << "dead gradient: " << p->name;
  }
}

// ---------------------------------------------------------- DenseBlock --

TEST(DenseBlock, OutputChannelsWithInput) {
  Rng rng(1);
  DenseBlock block("db",
                   {.in_c = 8, .growth = 4, .layers = 3, .kernel = 3,
                    .dropout = 0.0f, .include_input = true},
                   rng);
  EXPECT_EQ(block.out_channels(), 8 + 3 * 4);
  const auto out = block.OutputShape(TensorShape::NCHW(1, 8, 6, 6));
  EXPECT_EQ(out, TensorShape::NCHW(1, 20, 6, 6));
}

TEST(DenseBlock, OutputChannelsWithoutInput) {
  Rng rng(1);
  DenseBlock block("db",
                   {.in_c = 8, .growth = 4, .layers = 3, .kernel = 3,
                    .dropout = 0.0f, .include_input = false},
                   rng);
  EXPECT_EQ(block.out_channels(), 12);
}

TEST(DenseBlock, GradCheck) {
  for (const bool include_input : {true, false}) {
    Rng rng(2);
    DenseBlock block("db",
                     {.in_c = 3, .growth = 2, .layers = 2, .kernel = 3,
                      .dropout = 0.0f, .include_input = include_input},
                     rng);
    // Warm the batch norms so eval mode has sane running stats.
    const Tensor warm = RandomInput(TensorShape::NCHW(4, 3, 6, 6), 3);
    (void)block.Forward(warm, true);
    const Tensor x = RandomInput(TensorShape::NCHW(2, 3, 6, 6), 4);
    const auto res = CheckInputGradient(block, x);
    EXPECT_LT(res.max_rel_err, 2e-2) << "include_input=" << include_input;
  }
}

TEST(DenseBlock, ParamsReceiveGradients) {
  Rng rng(5);
  DenseBlock block("db",
                   {.in_c = 4, .growth = 3, .layers = 3, .kernel = 3,
                    .dropout = 0.0f, .include_input = true},
                   rng);
  ExpectAllParamsReceiveGradients(block,
                                  RandomInput(TensorShape::NCHW(2, 4, 8, 8)));
}

// ------------------------------------------------------------ Tiramisu --

TEST(Tiramisu, PresetConfigsMatchPaper) {
  const auto original = Tiramisu::Config::Original();
  EXPECT_EQ(original.growth_rate, 16);
  EXPECT_EQ(original.kernel, 3);
  const auto modified = Tiramisu::Config::Modified();
  EXPECT_EQ(modified.growth_rate, 32);
  EXPECT_EQ(modified.kernel, 5);
  // Sec V-B5: halved layer counts, same receptive field via 5×5.
  std::int64_t orig_total = original.bottleneck_layers;
  for (auto l : original.down_layers) orig_total += l;
  std::int64_t mod_total = modified.bottleneck_layers;
  for (auto l : modified.down_layers) mod_total += l;
  EXPECT_NEAR(static_cast<double>(orig_total) / mod_total, 2.0, 0.6);
}

TEST(Tiramisu, OutputShapeIsPerPixelClassMap) {
  Rng rng(6);
  Tiramisu net(Tiramisu::Config::Downscaled(4), rng);
  EXPECT_EQ(net.SpatialDivisor(), 4);
  const auto out = net.OutputShape(TensorShape::NCHW(2, 4, 16, 24));
  EXPECT_EQ(out, TensorShape::NCHW(2, 3, 16, 24));
  EXPECT_THROW(net.OutputShape(TensorShape::NCHW(1, 4, 10, 16)), Error);
}

TEST(Tiramisu, ForwardBackwardConnected) {
  Rng rng(7);
  Tiramisu net(Tiramisu::Config::Downscaled(4), rng);
  ExpectAllParamsReceiveGradients(
      net, RandomInput(TensorShape::NCHW(1, 4, 16, 16)));
}

TEST(Tiramisu, GradCheckTinyConfig) {
  Rng rng(8);
  Tiramisu::Config cfg;
  cfg.in_channels = 2;
  cfg.num_classes = 2;
  cfg.first_features = 3;
  cfg.growth_rate = 2;
  cfg.kernel = 3;
  cfg.down_layers = {1};
  cfg.bottleneck_layers = 1;
  cfg.dropout = 0.0f;
  Tiramisu net(cfg, rng);
  const Tensor warm = RandomInput(TensorShape::NCHW(4, 2, 8, 8), 9);
  (void)net.Forward(warm, true);
  const Tensor x = RandomInput(TensorShape::NCHW(1, 2, 8, 8), 10);
  const auto res = CheckInputGradient(net, x, 1e-2, 60);
  EXPECT_LT(res.max_rel_err, 5e-2);
}

TEST(Tiramisu, ModifiedHasComparableParameterCountToOriginal) {
  // Sec V-B5: the growth-32 redesign kept overall network size roughly the
  // same. Verify within a factor ~2 at small input channel count.
  Rng rng(11);
  Tiramisu original(Tiramisu::Config::Original(), rng);
  Tiramisu modified(Tiramisu::Config::Modified(), rng);
  const double ratio = static_cast<double>(modified.ParameterCount()) /
                       static_cast<double>(original.ParameterCount());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 4.0);
}

TEST(Tiramisu, FP16ForwardFinite) {
  Rng rng(12);
  Tiramisu net(Tiramisu::Config::Downscaled(4), rng);
  net.SetPrecisionAll(Precision::kFP16);
  const Tensor x = RandomInput(TensorShape::NCHW(1, 4, 16, 16), 13);
  const Tensor y = net.Forward(x, false);
  EXPECT_TRUE(y.AllFinite());
}

// ---------------------------------------------------------- Bottleneck --

TEST(Bottleneck, IdentityShortcutWhenShapesMatch) {
  Rng rng(14);
  Bottleneck block("b",
                   {.in_c = 8, .mid_c = 2, .out_c = 8, .stride = 1,
                    .dilation = 1},
                   rng);
  // Only the main path has parameters (no projection).
  std::set<std::string> names;
  for (Param* p : block.Params()) names.insert(p->name);
  EXPECT_EQ(names.count("b.proj.weight"), 0u);
}

TEST(Bottleneck, ProjectionShortcutWhenChannelsChange) {
  Rng rng(15);
  Bottleneck block("b",
                   {.in_c = 4, .mid_c = 2, .out_c = 8, .stride = 2,
                    .dilation = 1},
                   rng);
  std::set<std::string> names;
  for (Param* p : block.Params()) names.insert(p->name);
  EXPECT_EQ(names.count("b.proj.weight"), 1u);
  const auto out = block.OutputShape(TensorShape::NCHW(1, 4, 8, 8));
  EXPECT_EQ(out, TensorShape::NCHW(1, 8, 4, 4));
}

TEST(Bottleneck, GradCheck) {
  Rng rng(16);
  Bottleneck block("b",
                   {.in_c = 3, .mid_c = 2, .out_c = 6, .stride = 1,
                    .dilation = 2},
                   rng);
  const Tensor warm = RandomInput(TensorShape::NCHW(4, 3, 6, 6), 17);
  (void)block.Forward(warm, true);
  const Tensor x = RandomInput(TensorShape::NCHW(2, 3, 6, 6), 18);
  const auto res = CheckInputGradient(block, x);
  EXPECT_LT(res.max_rel_err, 2e-2);
}

// ------------------------------------------------------- ResNetEncoder --

TEST(ResNetEncoder, PaperGeometry) {
  // Fig 1: 1152×768 input -> stride 8 -> 144×96 with 2048 channels; the
  // low-level tap is at stride 4 (288×192) with 256 channels.
  Rng rng(19);
  ResNetEncoder enc(ResNetEncoder::Config::ResNet50(16), rng);
  EXPECT_EQ(enc.output_stride(), 8);
  EXPECT_EQ(enc.out_channels(), 2048);
  EXPECT_EQ(enc.low_level_channels(), 256);
  const auto out = enc.OutputShape(TensorShape::NCHW(1, 16, 768, 1152));
  EXPECT_EQ(out, TensorShape::NCHW(1, 2048, 96, 144));
  const auto low = enc.LowLevelShape(TensorShape::NCHW(1, 16, 768, 1152));
  EXPECT_EQ(low, TensorShape::NCHW(1, 256, 192, 288));
}

TEST(ResNetEncoder, DownscaledForwardBackward) {
  Rng rng(20);
  ResNetEncoder enc(ResNetEncoder::Config::Downscaled(4), rng);
  const Tensor x = RandomInput(TensorShape::NCHW(1, 4, 32, 32));
  const Tensor y = enc.Forward(x, true);
  EXPECT_EQ(y.shape(), enc.OutputShape(x.shape()));
  EXPECT_EQ(enc.low_level().shape(), enc.LowLevelShape(x.shape()));
  ExpectAllParamsReceiveGradients(enc, x);
}

TEST(ResNetEncoder, LowLevelGradientFlowsIn) {
  Rng rng(21);
  ResNetEncoder enc(ResNetEncoder::Config::Downscaled(4), rng);
  const Tensor x = RandomInput(TensorShape::NCHW(1, 4, 32, 32));
  const Tensor y = enc.Forward(x, true);

  // Zero output gradient + nonzero low-level gradient must still produce
  // nonzero input gradient (the skip path is differentiable).
  enc.AddLowLevelGradient(Tensor::Full(enc.low_level().shape(), 0.1f));
  const Tensor gin = enc.Backward(Tensor::Zeros(y.shape()));
  EXPECT_GT(gin.Norm(), 0.0f);
}

// ---------------------------------------------------------------- ASPP --

TEST(ASPP, OutputShapePreservesResolution) {
  Rng rng(22);
  ASPP aspp("aspp", {.in_c = 8, .branch_c = 4, .rates = {2, 4, 6}}, rng);
  const auto out = aspp.OutputShape(TensorShape::NCHW(1, 8, 12, 18));
  EXPECT_EQ(out, TensorShape::NCHW(1, 4, 12, 18));
}

TEST(ASPP, HasFourBranchesPlusProjection) {
  Rng rng(23);
  ASPP aspp("aspp", {.in_c = 4, .branch_c = 2, .rates = {12, 24, 36}}, rng);
  // 4 branch convs + 4 branch bns + projection conv + bn = params: each
  // conv 1 param (no bias), each bn 2.
  EXPECT_EQ(aspp.Params().size(), 4u * 3u + 3u);
}

TEST(ASPP, GradCheck) {
  Rng rng(24);
  ASPP aspp("aspp", {.in_c = 3, .branch_c = 2, .rates = {1, 2}}, rng);
  const Tensor warm = RandomInput(TensorShape::NCHW(4, 3, 6, 6), 25);
  (void)aspp.Forward(warm, true);
  const Tensor x = RandomInput(TensorShape::NCHW(1, 3, 6, 6), 26);
  const auto res = CheckInputGradient(aspp, x);
  EXPECT_LT(res.max_rel_err, 2e-2);
}

// ------------------------------------------------------- DeepLabV3Plus --

TEST(DeepLabV3Plus, PaperConfigShapes) {
  // Full-size network construction is cheap (weights only, no
  // activations): validate the Fig 1 geometry end to end.
  Rng rng(27);
  DeepLabV3Plus net(DeepLabV3Plus::Config::Paper(16), rng);
  const auto out = net.OutputShape(TensorShape::NCHW(1, 16, 768, 1152));
  EXPECT_EQ(out, TensorShape::NCHW(1, 3, 768, 1152));
  // ResNet-50 core: parameter count in the tens of millions.
  const auto params = net.ParameterCount();
  EXPECT_GT(params, 20'000'000);
  EXPECT_LT(params, 80'000'000);
}

TEST(DeepLabV3Plus, DownscaledForwardBackwardConnected) {
  Rng rng(28);
  DeepLabV3Plus net(DeepLabV3Plus::Config::Downscaled(4), rng);
  ExpectAllParamsReceiveGradients(
      net, RandomInput(TensorShape::NCHW(1, 4, 32, 32)));
}

TEST(DeepLabV3Plus, QuarterResDecoderVariant) {
  Rng rng(29);
  auto cfg = DeepLabV3Plus::Config::Downscaled(4);
  cfg.full_res_decoder = false;
  DeepLabV3Plus net(cfg, rng);
  const Tensor x = RandomInput(TensorShape::NCHW(1, 4, 32, 32));
  const Tensor y = net.Forward(x, true);
  EXPECT_EQ(y.shape(), TensorShape::NCHW(1, 3, 32, 32));
  ExpectAllParamsReceiveGradients(net, x);

  // The quarter-res variant must be cheaper in parameters than full-res.
  Rng rng2(29);
  DeepLabV3Plus full(DeepLabV3Plus::Config::Downscaled(4), rng2);
  EXPECT_LT(net.ParameterCount(), full.ParameterCount());
}

TEST(DeepLabV3Plus, TrainingStepReducesLoss) {
  // One tiny but real end-to-end sanity check: a few SGD steps on a fixed
  // batch must reduce the weighted loss.
  Rng rng(30);
  auto cfg = DeepLabV3Plus::Config::Downscaled(2);
  cfg.num_classes = 2;
  DeepLabV3Plus net(cfg, rng);
  const Tensor x = RandomInput(TensorShape::NCHW(1, 2, 16, 16), 31);
  std::vector<std::uint8_t> labels(16 * 16, 0);
  for (std::size_t i = 0; i < labels.size(); i += 7) labels[i] = 1;

  double first_loss = 0, last_loss = 0;
  for (int step = 0; step < 8; ++step) {
    for (Param* p : net.Params()) p->grad.SetZero();
    const Tensor logits = net.Forward(x, true);
    const auto res = WeightedSoftmaxCrossEntropy(logits, labels, {});
    (void)net.Backward(res.grad_logits);
    for (Param* p : net.Params()) p->value.Axpy(-0.05f, p->grad);
    if (step == 0) first_loss = res.loss;
    last_loss = res.loss;
  }
  EXPECT_LT(last_loss, first_loss);
}

}  // namespace
}  // namespace exaclim
