#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "tensor/cast.hpp"
#include "tensor/gemm.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace exaclim {
namespace {

// Reference O(mnk) GEMM for validating the blocked kernel.
std::vector<float> NaiveGemm(bool ta, bool tb, std::int64_t m, std::int64_t n,
                             std::int64_t k, float alpha,
                             const std::vector<float>& a,
                             const std::vector<float>& b, float beta,
                             std::vector<float> c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = static_cast<float>(alpha * acc + beta * c[i * n + j]);
    }
  }
  return c;
}

// ------------------------------------------------------------- Shape ----

TEST(TensorShape, BasicProperties) {
  const TensorShape s = TensorShape::NCHW(2, 16, 768, 1152);
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.n(), 2);
  EXPECT_EQ(s.c(), 16);
  EXPECT_EQ(s.h(), 768);
  EXPECT_EQ(s.w(), 1152);
  EXPECT_EQ(s.NumElements(), 2ll * 16 * 768 * 1152);
  EXPECT_EQ(s.ToString(), "[2,16,768,1152]");
}

TEST(TensorShape, Equality) {
  EXPECT_EQ(TensorShape({1, 2}), TensorShape({1, 2}));
  EXPECT_NE(TensorShape({1, 2}), TensorShape({2, 1}));
  EXPECT_NE(TensorShape({1, 2}), TensorShape({1, 2, 1}));
}

TEST(TensorShape, RejectsNegativeDims) {
  EXPECT_THROW(TensorShape({1, -2}), Error);
}

TEST(TensorShape, ScalarAndEmpty) {
  EXPECT_EQ(TensorShape({}).NumElements(), 1);
  EXPECT_EQ(TensorShape({0, 5}).NumElements(), 0);
}

// ------------------------------------------------------------ Tensor ----

TEST(Tensor, ZeroInitialised) {
  const Tensor t(TensorShape{3, 4});
  for (std::int64_t i = 0; i < t.NumElements(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, AtRowMajorNCHWLayout) {
  Tensor t(TensorShape::NCHW(2, 3, 4, 5));
  t.At(1, 2, 3, 4) = 7.0f;
  // offset = ((1*3+2)*4+3)*5+4
  EXPECT_EQ(t[static_cast<std::size_t>(((1 * 3 + 2) * 4 + 3) * 5 + 4)], 7.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t(TensorShape::NCHW(1, 1, 2, 2));
  EXPECT_THROW(t.At(0, 0, 2, 0), Error);
  EXPECT_THROW(t.At(0, 1, 0, 0), Error);
}

TEST(Tensor, FromVectorValidatesCount) {
  EXPECT_THROW(Tensor::FromVector(TensorShape{2, 2}, {1, 2, 3}), Error);
  const Tensor t = Tensor::FromVector(TensorShape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t[3], 4.0f);
}

TEST(Tensor, ReshapePreservesData) {
  const Tensor t = Tensor::FromVector(TensorShape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.Reshaped(TensorShape{3, 2});
  EXPECT_EQ(r.shape(), TensorShape({3, 2}));
  for (int i = 0; i < 6; ++i) EXPECT_EQ(r[i], t[i]);
  EXPECT_THROW(t.Reshaped(TensorShape{4, 2}), Error);
}

TEST(Tensor, ArithmeticOps) {
  Tensor a = Tensor::FromVector(TensorShape{3}, {1, 2, 3});
  const Tensor b = Tensor::FromVector(TensorShape{3}, {10, 20, 30});
  a += b;
  EXPECT_EQ(a[2], 33.0f);
  a -= b;
  EXPECT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a[0], 2.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a[1], 4.0f + 10.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(TensorShape{3});
  const Tensor b(TensorShape{4});
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(a.Axpy(1.0f, b), Error);
  EXPECT_THROW((void)a.Dot(b), Error);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::FromVector(TensorShape{4}, {-1, 2, -3, 4});
  EXPECT_EQ(t.Sum(), 2.0f);
  EXPECT_EQ(t.Max(), 4.0f);
  EXPECT_EQ(t.Min(), -3.0f);
  EXPECT_FLOAT_EQ(t.Norm(), std::sqrt(30.0f));
  EXPECT_EQ(t.Dot(t), 30.0f);
}

TEST(Tensor, AllFinite) {
  Tensor t = Tensor::FromVector(TensorShape{2}, {1.0f, 2.0f});
  EXPECT_TRUE(t.AllFinite());
  t[1] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(t.AllFinite());
  t[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(t.AllFinite());
}

TEST(Tensor, RandnMoments) {
  Rng rng(11);
  const Tensor t = Tensor::Randn(TensorShape{100000}, rng, 1.0f, 2.0f);
  const double mean = t.Sum() / t.NumElements();
  EXPECT_NEAR(mean, 1.0, 0.05);
}

// -------------------------------------------------------------- GEMM ----

class GemmVariants
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmVariants, MatchesNaiveReference) {
  const auto [ta, tb] = GetParam();
  Rng rng(100 + static_cast<int>(ta) * 2 + static_cast<int>(tb));
  const std::int64_t m = 37, n = 53, k = 29;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto& v : a) v = rng.Uniform(-1, 1);
  for (auto& v : b) v = rng.Uniform(-1, 1);
  for (auto& v : c) v = rng.Uniform(-1, 1);

  const auto expected = NaiveGemm(ta, tb, m, n, k, 0.7f, a, b, 0.3f, c);
  Gemm(ta, tb, m, n, k, 0.7f, a.data(), b.data(), 0.3f, c.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-4f) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmVariants,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Gemm, LargeBlockedPathMatchesReference) {
  Rng rng(7);
  const std::int64_t m = 130, n = 300, k = 270;  // spans multiple blocks
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  for (auto& v : a) v = rng.Uniform(-1, 1);
  for (auto& v : b) v = rng.Uniform(-1, 1);
  const auto expected = NaiveGemm(false, false, m, n, k, 1.0f, a, b, 0.0f, c);
  Gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  double max_err = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    max_err = std::max(max_err,
                       static_cast<double>(std::fabs(c[i] - expected[i])));
  }
  EXPECT_LT(max_err, 5e-4);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  std::vector<float> a{1, 2};
  std::vector<float> b{3, 4};
  std::vector<float> c{std::numeric_limits<float>::quiet_NaN()};
  Gemm(false, false, 1, 1, 2, 1.0f, a.data(), b.data(), 0.0f, c.data());
  EXPECT_EQ(c[0], 11.0f);
}

TEST(Gemm, KZeroScalesByBeta) {
  std::vector<float> c{2.0f, 4.0f};
  Gemm(false, false, 1, 2, 0, 1.0f, nullptr, nullptr, 0.5f, c.data());
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[1], 2.0f);
}

TEST(Gemm, IdentityMultiplication) {
  const std::int64_t n = 16;
  std::vector<float> eye(static_cast<std::size_t>(n * n), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) eye[i * n + i] = 1.0f;
  Rng rng(3);
  std::vector<float> b(static_cast<std::size_t>(n * n));
  for (auto& v : b) v = rng.Uniform(-1, 1);
  std::vector<float> c(b.size(), 0.0f);
  Gemm(false, false, n, n, n, 1.0f, eye.data(), b.data(), 0.0f, c.data());
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_FLOAT_EQ(c[i], b[i]);
}

TEST(GemmChecked, ValidatesSizes) {
  std::vector<float> a(6), b(6), c(4);
  EXPECT_NO_THROW(GemmChecked(false, false, 2, 2, 3, 1.0f, a, b, 0.0f, c));
  EXPECT_THROW(GemmChecked(false, false, 2, 2, 4, 1.0f, a, b, 0.0f, c),
               Error);
}

// -------------------------------------------------------------- Cast ----

TEST(Cast, RoundTripHalfQuantises) {
  std::vector<float> v{1.0f, 1.0f + 1e-4f, 3.14159f};
  RoundTripHalf(v);
  EXPECT_EQ(v[0], 1.0f);
  EXPECT_EQ(v[1], 1.0f);  // below half precision
  EXPECT_NEAR(v[2], 3.14159f, 3.14159f * kHalfEpsilonRel);
}

TEST(Cast, PackUnpackRoundTrip) {
  Rng rng(2);
  std::vector<float> v(1000);
  for (auto& x : v) x = rng.Uniform(-100, 100);
  auto packed = PackHalf(v);
  std::vector<float> out(v.size());
  UnpackHalf(packed, out);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(out[i], Half(v[i]).ToFloat());
  }
}

TEST(Cast, CountHalfNonFinite) {
  std::vector<float> v{1.0f, 70000.0f, -1e9f, 5.0f,
                       std::numeric_limits<float>::quiet_NaN()};
  EXPECT_EQ(CountHalfNonFinite(v), 3);
}

TEST(Cast, BytesPerElement) {
  EXPECT_EQ(BytesPerElement(Precision::kFP32), 4);
  EXPECT_EQ(BytesPerElement(Precision::kFP16), 2);
}

TEST(Cast, TensorRoundTrip) {
  Tensor t = Tensor::FromVector(TensorShape{2}, {65504.0f, 1e8f});
  RoundTripHalf(t);
  EXPECT_EQ(t[0], 65504.0f);
  EXPECT_TRUE(std::isinf(t[1]));
}

// The vectorized wire-path conversions in cast.cpp must be bit-identical
// to element-by-element Half construction: every rounding boundary,
// subnormal, overflow and NaN case.

TEST(Cast, PackHalfBitExactVsHalfFuzz) {
  Rng rng(11);
  std::vector<float> values;
  values.reserve(300000 + 64);
  // Random bit patterns cover every exponent regime including NaNs/infs.
  for (int i = 0; i < 300000; ++i) {
    const auto bits = static_cast<std::uint32_t>(rng.engine()());
    values.push_back(std::bit_cast<float>(bits));
  }
  // Boundary patterns of Half::FromFloat: underflow threshold, subnormal
  // range, normal/subnormal crossover, overflow-to-inf threshold.
  for (const std::uint32_t abs :
       {0x00000000u, 0x32ffffffu, 0x33000000u, 0x33000001u, 0x33800000u,
        0x387fffffu, 0x38800000u, 0x38800001u, 0x3f800000u, 0x477fefffu,
        0x477ff000u, 0x477fffffu, 0x47800000u, 0x7f7fffffu, 0x7f800000u,
        0x7f800001u, 0x7fc00000u}) {
    values.push_back(std::bit_cast<float>(abs));
    values.push_back(std::bit_cast<float>(abs | 0x80000000u));
  }
  std::vector<std::uint16_t> packed(values.size());
  PackHalf(values, packed);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(packed[i], Half(values[i]).bits())
        << "float bits 0x" << std::hex
        << std::bit_cast<std::uint32_t>(values[i]);
  }
}

TEST(Cast, UnpackHalfBitExactVsHalfExhaustive) {
  // All 65536 binary16 values through the wire decode vs Half::ToFloat.
  std::vector<std::uint16_t> packed(1 << 16);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    packed[i] = static_cast<std::uint16_t>(i);
  }
  std::vector<float> out(packed.size());
  UnpackHalf(packed, out);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    const float expected = Half::FromBits(packed[i]).ToFloat();
    EXPECT_EQ(std::bit_cast<std::uint32_t>(out[i]),
              std::bit_cast<std::uint32_t>(expected))
        << "half bits 0x" << std::hex << i;
  }
}

TEST(Cast, CountHalfNonFiniteMatchesHalfFuzz) {
  Rng rng(12);
  std::vector<float> values(20000);
  for (auto& v : values) {
    // Mix magnitudes straddling the binary16 overflow threshold.
    v = rng.Uniform(-1.0f, 1.0f) * (rng.Bernoulli(0.5) ? 70000.0f : 60000.0f);
  }
  values.push_back(std::numeric_limits<float>::infinity());
  values.push_back(std::numeric_limits<float>::quiet_NaN());
  values.push_back(65519.9f);   // rounds to 65504 (finite)
  values.push_back(65520.0f);   // rounds to inf
  std::int64_t expected = 0;
  for (const float v : values) expected += Half(v).IsFinite() ? 0 : 1;
  EXPECT_EQ(CountHalfNonFinite(values), expected);
}

}  // namespace
}  // namespace exaclim
