#include <gtest/gtest.h>

#include <cmath>

#include "stats/stats.hpp"
#include "train/trainer.hpp"

namespace exaclim {
namespace {

ClimateDataset::Options TinyData() {
  ClimateDataset::Options o;
  o.num_samples = 40;
  o.generator.height = 32;
  o.generator.width = 32;
  o.channels = {kTMQ, kU850, kV850, kPSL};  // 4 channels: fast on CPU
  return o;
}

TrainerOptions TinyTrainer() {
  TrainerOptions o;
  o.arch = TrainerOptions::Arch::kTiramisu;
  o.tiramisu = Tiramisu::Config::Downscaled(4);
  o.learning_rate = 2e-3f;
  o.exchanger.transport = ReduceTransport::kMpiRing;
  o.exchanger.hybrid.topology.ranks_per_node = 2;
  o.exchanger.hybrid.mpi_ranks_per_node = 1;
  return o;
}

TEST(RankTrainer, LossDecreasesOnFixedBatch) {
  ClimateDataset dataset(TinyData());
  const auto freq = dataset.MeasureFrequencies(8);
  const auto weights = MakeClassWeights(freq, WeightingScheme::kInverseSqrt);
  RankTrainer trainer(TinyTrainer(), weights, 0);
  const std::vector<std::int64_t> idx{0};
  const Batch batch = dataset.MakeBatch(DatasetSplit::kTrain, idx);
  double first = 0, last = 0;
  for (int s = 0; s < 12; ++s) {
    const auto r = trainer.Step(batch);
    if (s == 0) first = r.loss;
    last = r.loss;
    EXPECT_TRUE(r.update_applied);
  }
  EXPECT_LT(last, first);
}

TEST(RankTrainer, DeepLabVariantTrains) {
  ClimateDataset dataset(TinyData());
  TrainerOptions o = TinyTrainer();
  o.arch = TrainerOptions::Arch::kDeepLab;
  o.deeplab = DeepLabV3Plus::Config::Downscaled(4);
  const auto freq = dataset.MeasureFrequencies(8);
  RankTrainer trainer(
      o, MakeClassWeights(freq, WeightingScheme::kInverseSqrt), 0);
  const Batch batch =
      dataset.MakeBatch(DatasetSplit::kTrain, std::vector<std::int64_t>{1});
  double first = 0, last = 0;
  for (int s = 0; s < 8; ++s) {
    const auto r = trainer.Step(batch);
    if (s == 0) first = r.loss;
    last = r.loss;
  }
  EXPECT_LT(last, first);
}

TEST(RankTrainer, ReplicasStayIdenticalAcrossRanks) {
  // The synchronous-training invariant: after N distributed steps the
  // model weights on every rank are bit-identical, despite each rank
  // seeing different data and shuffling its readiness order differently.
  ClimateDataset dataset(TinyData());
  const auto freq = dataset.MeasureFrequencies(8);
  const auto weights = MakeClassWeights(freq, WeightingScheme::kInverseSqrt);
  const int ranks = 4;
  std::vector<std::vector<float>> final_weights(ranks);
  SimWorld world(ranks);
  world.Run([&](Communicator& comm) {
    RankTrainer trainer(TinyTrainer(), weights, comm.rank());
    Rng rng(10 + comm.rank());
    for (int s = 0; s < 3; ++s) {
      const std::vector<std::int64_t> idx{
          rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1)};
      const Batch batch = dataset.MakeBatch(DatasetSplit::kTrain, idx);
      (void)trainer.Step(batch, &comm);
    }
    auto& out = final_weights[static_cast<std::size_t>(comm.rank())];
    for (const Param* p : trainer.params()) {
      out.insert(out.end(), p->value.Data().begin(), p->value.Data().end());
    }
  });
  for (int r = 1; r < ranks; ++r) {
    EXPECT_EQ(final_weights[static_cast<std::size_t>(r)], final_weights[0])
        << "rank " << r << " diverged";
  }
}

TEST(RankTrainer, FP16TrainingRunsWithLossScaling) {
  ClimateDataset dataset(TinyData());
  TrainerOptions o = TinyTrainer();
  o.precision = Precision::kFP16;
  o.loss_scaler.initial_scale = 256.0f;
  const auto freq = dataset.MeasureFrequencies(8);
  RankTrainer trainer(
      o, MakeClassWeights(freq, WeightingScheme::kInverseSqrt), 0);
  const Batch batch =
      dataset.MakeBatch(DatasetSplit::kTrain, std::vector<std::int64_t>{2});
  double first = 0, last = 0;
  int applied = 0;
  for (int s = 0; s < 12; ++s) {
    const auto r = trainer.Step(batch);
    EXPECT_EQ(r.loss_scale, 256.0f);
    if (s == 0) first = r.loss;
    last = r.loss;
    applied += r.update_applied ? 1 : 0;
  }
  EXPECT_GT(applied, 8);  // most steps apply
  EXPECT_LT(last, first);
  // Weights stay finite under FP16 with inverse-sqrt weighting (the Sec
  // V-B1 stability claim).
  for (const Param* p : trainer.params()) {
    EXPECT_TRUE(p->value.AllFinite()) << p->name;
  }
}

TEST(RankTrainer, EvaluateProducesConfusionMatrix) {
  ClimateDataset dataset(TinyData());
  const auto freq = dataset.MeasureFrequencies(8);
  RankTrainer trainer(
      TinyTrainer(), MakeClassWeights(freq, WeightingScheme::kInverseSqrt),
      0);
  const auto cm = trainer.Evaluate(dataset, DatasetSplit::kValidation, 2);
  EXPECT_EQ(cm.total(), 2 * 32 * 32);
  EXPECT_GE(cm.MeanIoU(), 0.0);
  EXPECT_LE(cm.MeanIoU(), 1.0);
}

TEST(RunDistributedTraining, LossTrendsDownAcrossRanks) {
  ClimateDataset dataset(TinyData());
  TrainerOptions o = TinyTrainer();
  const auto result = RunDistributedTraining(o, dataset, 2, 20, 8);
  ASSERT_EQ(result.loss_history.size(), 20u);
  const auto smoothed = MovingAverage(result.loss_history, 5);
  EXPECT_LT(smoothed.back(), smoothed[4] * 1.05);
  EXPECT_EQ(result.skipped_steps, 0);
}

TEST(RunDistributedTraining, LagVariantConverges) {
  ClimateDataset dataset(TinyData());
  TrainerOptions o = TinyTrainer();
  o.lag = 1;
  const auto result = RunDistributedTraining(o, dataset, 2, 16, 8);
  const auto smoothed = MovingAverage(result.loss_history, 4);
  EXPECT_LT(smoothed.back(), smoothed[3] * 1.10);
}

TEST(RunDistributedTraining, UnweightedLossLearnsDegenerateBackground) {
  // Sec V-B1: with an unweighted loss the network collapses to
  // predicting background everywhere — high pixel accuracy, useless
  // masks. Weighted loss avoids the collapse.
  ClimateDataset::Options data_opts = TinyData();
  ClimateDataset dataset(data_opts);
  TrainerOptions unweighted = TinyTrainer();
  unweighted.weighting = WeightingScheme::kNone;
  const auto result = RunDistributedTraining(unweighted, dataset, 1, 30, 8);
  // Pixel accuracy converges to roughly the background frequency.
  const auto freq = dataset.MeasureFrequencies(8);
  EXPECT_GT(result.accuracy_history.back(), freq[kBackground] - 0.05);
}

}  // namespace
}  // namespace exaclim
