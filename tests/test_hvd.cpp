#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "comm/collectives.hpp"
#include "common/error.hpp"
#include "hvd/control_plane.hpp"
#include "hvd/exchanger.hpp"
#include "hvd/group.hpp"
#include "hvd/hybrid.hpp"

namespace exaclim {
namespace {

std::vector<float> RankPayload(int rank, std::size_t n) {
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(rank + 1) + static_cast<float>(i) * 0.125f;
  }
  return data;
}

std::vector<float> ExpectedSum(int world, std::size_t n) {
  std::vector<float> sum(n, 0.0f);
  for (int r = 0; r < world; ++r) {
    const auto p = RankPayload(r, n);
    for (std::size_t i = 0; i < n; ++i) sum[i] += p[i];
  }
  return sum;
}

// ----------------------------------------------------------- RankGroup --

TEST(RankGroup, MembershipAndIndexing) {
  const std::vector<int> ranks{3, 7, 11};
  RankGroup g(ranks, 7);
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.my_index(), 1);
  EXPECT_EQ(g.WorldRank(2), 11);
  EXPECT_THROW(RankGroup(ranks, 5), Error);
}

TEST(GroupCollectives, SubsetAllreduceLeavesOthersUntouched) {
  SimWorld world(6);
  world.Run([](Communicator& comm) {
    auto data = RankPayload(comm.rank(), 13);
    const std::vector<int> members{1, 3, 4};
    const bool in_group =
        std::find(members.begin(), members.end(), comm.rank()) !=
        members.end();
    if (in_group) {
      RankGroup g(members, comm.rank());
      GroupAllreduceRing(comm, g, data, 100);
      float expected0 = 0.0f;
      for (int r : members) expected0 += RankPayload(r, 13)[0];
      EXPECT_NEAR(data[0], expected0, 1e-4f);
    } else {
      EXPECT_FLOAT_EQ(data[0], RankPayload(comm.rank(), 13)[0]);
    }
  });
}

TEST(GroupCollectives, TreeAndRingAgree) {
  SimWorld world(5);
  world.Run([](Communicator& comm) {
    const std::vector<int> members{0, 1, 2, 3, 4};
    RankGroup g(members, comm.rank());
    auto ring = RankPayload(comm.rank(), 31);
    auto tree = RankPayload(comm.rank(), 31);
    GroupAllreduceRing(comm, g, ring, 200);
    GroupAllreduceTree(comm, g, tree, 300);
    for (std::size_t i = 0; i < ring.size(); ++i) {
      EXPECT_NEAR(ring[i], tree[i], 1e-4f);
    }
  });
}

TEST(GroupCollectives, BroadcastFromNonzeroRoot) {
  SimWorld world(4);
  world.Run([](Communicator& comm) {
    const std::vector<int> members{0, 1, 2, 3};
    RankGroup g(members, comm.rank());
    std::vector<float> data(5, comm.rank() == 2 ? 9.0f : 0.0f);
    GroupBroadcast(comm, g, /*root_index=*/2, data, 400);
    for (float v : data) EXPECT_FLOAT_EQ(v, 9.0f);
  });
}

// -------------------------------------------------------- ControlPlane --

class ControlPlaneKinds : public ::testing::TestWithParam<bool> {};

TEST_P(ControlPlaneKinds, AllRanksAgreeOnOrderDespiteShuffles) {
  const bool hierarchical = GetParam();
  const int p = 7;
  const int n_tensors = 12;
  SimWorld world(p);
  std::vector<std::vector<int>> orders(p);
  world.Run([&](Communicator& comm) {
    auto plane = MakeControlPlane(hierarchical, 2);
    std::vector<int> ready(n_tensors);
    std::iota(ready.begin(), ready.end(), 0);
    // Different shuffle per rank.
    Rng rng(1234 + comm.rank());
    std::shuffle(ready.begin(), ready.end(), rng.engine());
    orders[static_cast<std::size_t>(comm.rank())] =
        plane->NegotiateOrder(comm, ready);
  });
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(orders[static_cast<std::size_t>(r)], orders[0]) << "rank " << r;
  }
  // The order is a permutation of all tensor ids.
  auto sorted = orders[0];
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < n_tensors; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(FlatAndHierarchical, ControlPlaneKinds,
                         ::testing::Bool());

TEST(ControlPlane, HierarchicalRadixSweepAgrees) {
  for (int radix : {1, 2, 3, 4, 8}) {
    const int p = 9;
    SimWorld world(p);
    std::vector<std::vector<int>> orders(p);
    world.Run([&](Communicator& comm) {
      HierarchicalControlPlane plane(radix);
      std::vector<int> ready{4, 0, 3, 1, 2};
      Rng rng(99 + comm.rank());
      std::shuffle(ready.begin(), ready.end(), rng.engine());
      orders[static_cast<std::size_t>(comm.rank())] =
          plane.NegotiateOrder(comm, ready);
    });
    for (int r = 1; r < p; ++r) {
      EXPECT_EQ(orders[static_cast<std::size_t>(r)], orders[0])
          << "radix " << radix;
    }
  }
}

TEST(ControlPlane, TreeStructure) {
  EXPECT_EQ(HierarchicalControlPlane::Parent(1, 4), 0);
  EXPECT_EQ(HierarchicalControlPlane::Parent(4, 4), 0);
  EXPECT_EQ(HierarchicalControlPlane::Parent(5, 4), 1);
  const auto c0 = HierarchicalControlPlane::Children(0, 4, 10);
  EXPECT_EQ(c0, (std::vector<int>{1, 2, 3, 4}));
  const auto c2 = HierarchicalControlPlane::Children(2, 4, 10);
  EXPECT_EQ(c2, (std::vector<int>{9}));
}

TEST(ControlPlane, MeasuredControllerLoadMatchesAnalyticModel) {
  // The Sec V-A3 claim quantified: the controller's message load is
  // (P-1)*N flat vs radix*N hierarchical. Validate the analytic formulas
  // against the real protocol's counters at thread scale.
  const int p = 16;
  const int n_tensors = 20;
  for (const bool hierarchical : {false, true}) {
    SimWorld world(p);
    std::int64_t controller_recv = 0;
    world.Run([&](Communicator& comm) {
      auto plane = MakeControlPlane(hierarchical, 4);
      std::vector<int> ready(n_tensors);
      std::iota(ready.begin(), ready.end(), 0);
      comm.ResetCounters();
      (void)plane->NegotiateOrder(comm, ready);
      if (comm.rank() == 0) controller_recv = comm.messages_received();
    });
    const auto load = hierarchical
                          ? HierarchicalControlLoad(p, 4, n_tensors)
                          : FlatControlLoad(p, n_tensors);
    EXPECT_EQ(controller_recv, load.controller_recv)
        << (hierarchical ? "hierarchical" : "flat");
  }
}

TEST(ControlPlane, HierarchicalBoundsPerRankMessages) {
  // No rank sends or receives more than (radix+1) messages per tensor.
  const int p = 27;
  const int radix = 3;
  const int n_tensors = 8;
  SimWorld world(p);
  std::vector<std::int64_t> sent(p), received(p);
  world.Run([&](Communicator& comm) {
    HierarchicalControlPlane plane(radix);
    std::vector<int> ready(n_tensors);
    std::iota(ready.begin(), ready.end(), 0);
    comm.ResetCounters();
    (void)plane.NegotiateOrder(comm, ready);
    sent[static_cast<std::size_t>(comm.rank())] = comm.messages_sent();
    received[static_cast<std::size_t>(comm.rank())] =
        comm.messages_received();
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_LE(sent[static_cast<std::size_t>(r)],
              static_cast<std::int64_t>(radix + 1) * n_tensors + radix + 1)
        << "rank " << r;
    EXPECT_LE(received[static_cast<std::size_t>(r)],
              static_cast<std::int64_t>(radix + 1) * n_tensors + radix + 1)
        << "rank " << r;
  }
}

// ------------------------------------------------------ HybridAllreduce --

TEST(HybridAllreduce, MatchesFlatAllreduce) {
  // 2 "nodes" x 6 "GPUs", 4 MPI ranks per node — the Summit layout.
  const int p = 12;
  const std::size_t len = 101;
  const auto expected = ExpectedSum(p, len);
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    auto data = RankPayload(comm.rank(), len);
    HybridAllreduce(comm, data, {});
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_NEAR(data[i], expected[i], 1e-3f) << "i=" << i;
    }
  });
}

TEST(HybridAllreduce, SingleNodeDegeneratesToNccl) {
  const int p = 6;
  const std::size_t len = 17;
  const auto expected = ExpectedSum(p, len);
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    auto data = RankPayload(comm.rank(), len);
    HybridAllreduce(comm, data, {});
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_NEAR(data[i], expected[i], 1e-4f);
    }
  });
}

TEST(HybridAllreduce, PizDaintLayoutOneRankPerNode) {
  const int p = 8;
  const std::size_t len = 33;
  const auto expected = ExpectedSum(p, len);
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    auto data = RankPayload(comm.rank(), len);
    HybridAllreduceOptions opts;
    opts.topology.ranks_per_node = 1;
    opts.mpi_ranks_per_node = 1;
    HybridAllreduce(comm, data, opts);
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_NEAR(data[i], expected[i], 1e-4f);
    }
  });
}

TEST(HybridAllreduce, RingInterNodeVariant) {
  const int p = 12;
  const std::size_t len = 64;
  const auto expected = ExpectedSum(p, len);
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    auto data = RankPayload(comm.rank(), len);
    HybridAllreduceOptions opts;
    opts.inter_node_tree = false;
    HybridAllreduce(comm, data, opts);
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_NEAR(data[i], expected[i], 1e-3f);
    }
  });
}

TEST(HybridAllreduce, TinyPayloadFewerElementsThanShards) {
  const int p = 12;
  const std::size_t len = 2;  // fewer elements than 4 MPI shards
  const auto expected = ExpectedSum(p, len);
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    auto data = RankPayload(comm.rank(), len);
    HybridAllreduce(comm, data, {});
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_NEAR(data[i], expected[i], 1e-4f);
    }
  });
}

TEST(HybridAllreduce, RejectsPartialNode) {
  SimWorld world(5);
  EXPECT_THROW(world.Run([](Communicator& comm) {
                 std::vector<float> data(4, 1.0f);
                 HybridAllreduce(comm, data, {});
               }),
               Error);
}

// --------------------------------------------------- GradientExchanger --

std::vector<std::unique_ptr<Param>> MakeParams(int rank, std::int64_t count,
                                               std::int64_t elems) {
  std::vector<std::unique_ptr<Param>> params;
  for (std::int64_t i = 0; i < count; ++i) {
    auto p = std::make_unique<Param>("p" + std::to_string(i),
                                     Tensor::Zeros(TensorShape{elems + i}));
    for (std::int64_t j = 0; j < p->grad.NumElements(); ++j) {
      p->grad[static_cast<std::size_t>(j)] =
          static_cast<float>(rank + 1) * 0.5f + static_cast<float>(i + j);
    }
    params.push_back(std::move(p));
  }
  return params;
}

TEST(GradientExchanger, AveragesAcrossRanksBitIdentically) {
  const int p = 6;
  SimWorld world(p);
  std::vector<std::vector<float>> results(p);
  world.Run([&](Communicator& comm) {
    auto owned = MakeParams(comm.rank(), 5, 7);
    std::vector<Param*> params;
    for (auto& q : owned) params.push_back(q.get());
    ExchangerOptions opts;
    opts.hybrid.topology.ranks_per_node = 3;
    opts.hybrid.mpi_ranks_per_node = 2;
    GradientExchanger exchanger(opts, 42);
    exchanger.Exchange(comm, params);
    std::vector<float>& flat = results[static_cast<std::size_t>(comm.rank())];
    for (Param* q : params) {
      flat.insert(flat.end(), q->grad.Data().begin(), q->grad.Data().end());
    }
  });
  // Every rank holds exactly the same averaged gradients.
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);
  }
  // And the average is correct: mean over ranks of (rank+1)*0.5 + (i+j).
  float mean_rank_term = 0.0f;
  for (int r = 0; r < p; ++r) mean_rank_term += (r + 1) * 0.5f;
  mean_rank_term /= p;
  EXPECT_NEAR(results[0][0], mean_rank_term + 0.0f, 1e-4f);
}

TEST(GradientExchanger, TransportsAgree) {
  const int p = 6;
  std::vector<std::vector<float>> per_transport;
  for (const auto transport :
       {ReduceTransport::kMpiRing, ReduceTransport::kMpiTree,
        ReduceTransport::kHybrid}) {
    SimWorld world(p);
    std::vector<float> rank0;
    world.Run([&](Communicator& comm) {
      auto owned = MakeParams(comm.rank(), 4, 9);
      std::vector<Param*> params;
      for (auto& q : owned) params.push_back(q.get());
      ExchangerOptions opts;
      opts.transport = transport;
      opts.hybrid.topology.ranks_per_node = 3;
      opts.hybrid.mpi_ranks_per_node = 2;
      GradientExchanger exchanger(opts, 7);
      exchanger.Exchange(comm, params);
      if (comm.rank() == 0) {
        for (Param* q : params) {
          rank0.insert(rank0.end(), q->grad.Data().begin(),
                       q->grad.Data().end());
        }
      }
    });
    per_transport.push_back(std::move(rank0));
  }
  for (std::size_t t = 1; t < per_transport.size(); ++t) {
    ASSERT_EQ(per_transport[t].size(), per_transport[0].size());
    for (std::size_t i = 0; i < per_transport[0].size(); ++i) {
      EXPECT_NEAR(per_transport[t][i], per_transport[0][i], 1e-4f)
          << "transport " << t << " i=" << i;
    }
  }
}

TEST(GradientExchanger, FusionThresholdControlsBufferCount) {
  const int p = 2;
  for (const auto& [threshold, expected_buffers] :
       std::vector<std::pair<std::int64_t, std::int64_t>>{
           {1, 6},          // every tensor alone
           {1 << 20, 1}}) {  // all fused into one buffer
    SimWorld world(p);
    std::int64_t buffers = 0;
    world.Run([&, threshold = threshold](Communicator& comm) {
      auto owned = MakeParams(comm.rank(), 6, 8);
      std::vector<Param*> params;
      for (auto& q : owned) params.push_back(q.get());
      ExchangerOptions opts;
      opts.transport = ReduceTransport::kMpiRing;
      opts.fusion_threshold_bytes = threshold;
      GradientExchanger exchanger(opts, 3);
      exchanger.Exchange(comm, params);
      if (comm.rank() == 0) buffers = exchanger.last_fused_buffers();
    });
    EXPECT_EQ(buffers, expected_buffers) << "threshold " << threshold;
  }
}

TEST(GradientExchanger, FP16WirePrecisionQuantises) {
  const int p = 2;
  SimWorld world(p);
  world.Run([&](Communicator& comm) {
    Param param("p", Tensor::Zeros(TensorShape{3}));
    param.grad[0] = 1.0f + 1e-4f;  // not representable in binary16
    param.grad[1] = 2.0f;
    param.grad[2] = 0.5f;
    ExchangerOptions opts;
    opts.transport = ReduceTransport::kMpiRing;
    opts.wire_precision = Precision::kFP16;
    GradientExchanger exchanger(opts, 5);
    std::vector<Param*> params{&param};
    exchanger.Exchange(comm, params);
    EXPECT_FLOAT_EQ(param.grad[0], 1.0f);  // quantised on the wire
    EXPECT_FLOAT_EQ(param.grad[1], 2.0f);
  });
}

TEST(GradientExchanger, SingleRankIsIdentityAverage) {
  SimWorld world(1);
  world.Run([](Communicator& comm) {
    Param param("p", Tensor::Zeros(TensorShape{4}));
    param.grad.Fill(3.0f);
    GradientExchanger exchanger(
        {.transport = ReduceTransport::kMpiRing}, 1);
    std::vector<Param*> params{&param};
    exchanger.Exchange(comm, params);
    EXPECT_FLOAT_EQ(param.grad[0], 3.0f);
  });
}

}  // namespace
}  // namespace exaclim
