// Tests for the heap-allocation discipline layer (DESIGN §11): the
// interposed operator new/delete counters, census/no-alloc region
// guards, the site registry, and the obs gauge bridge. The whole binary
// is `stress`-labelled so the AllocStress case also runs under TSan,
// where the lock-free per-thread records must come up clean.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/alloc_tracker.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace exaclim {
namespace {

// Every test drives the toggle programmatically; restore "off" on exit
// so test order doesn't leak tracking state.
class AllocTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override { SetAllocTracking(true); }
  void TearDown() override { SetAllocTracking(false); }
};

// Keeps a pointer observable so the optimizer cannot elide the heap
// round-trip (new-expression elision is legal since C++14).
void Escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

// Forces a real heap round-trip the optimizer cannot elide.
void Churn(std::size_t n = 1) {
  for (std::size_t i = 0; i < n; ++i) {
    auto* p = new char[64];  // lint:allow(naked-new)
    Escape(p);
    p[0] = static_cast<char>(i);
    delete[] p;  // lint:allow(naked-new)
  }
}

TEST_F(AllocTrackerTest, CountersAdvanceWhileTracking) {
  const AllocCounters before = ThreadAllocCounters();
  Churn(5);
  const AllocCounters after = ThreadAllocCounters();
  EXPECT_GE(after.count - before.count, 5);
  EXPECT_GE(after.bytes - before.bytes, 5 * 64);
  EXPECT_GE(after.free_count - before.free_count, 5);
}

TEST_F(AllocTrackerTest, TrackerOffRegionsAreInertAndCountersFrozen) {
  SetAllocTracking(false);
  const AllocCounters before = ThreadAllocCounters();
  {
    ScopedAllocCheck census(EXACLIM_ALLOC_SITE("test.off_census"),
                            ScopedAllocCheck::Mode::kCensus);
    ScopedAllocCheck guard(EXACLIM_ALLOC_SITE("test.off_guard"),
                           ScopedAllocCheck::Mode::kAssertNoAlloc);
    EXPECT_FALSE(census.active());
    EXPECT_FALSE(guard.active());
    Churn(3);
    EXPECT_EQ(census.count(), 0);
    EXPECT_EQ(guard.violations(), 0);
  }
  const AllocCounters after = ThreadAllocCounters();
  EXPECT_EQ(after.count, before.count);
  EXPECT_EQ(after.bytes, before.bytes);
}

TEST_F(AllocTrackerTest, CensusSeesOwnThreadAllocations) {
  ScopedAllocCheck census(EXACLIM_ALLOC_SITE("test.census"),
                          ScopedAllocCheck::Mode::kCensus);
  ASSERT_TRUE(census.active());
  Churn(4);
  EXPECT_GE(census.count(), 4);
  EXPECT_GE(census.bytes(), 4 * 64);
}

TEST_F(AllocTrackerTest, NestedCensusRegionsAreInclusive) {
  ScopedAllocCheck outer(EXACLIM_ALLOC_SITE("test.outer"),
                         ScopedAllocCheck::Mode::kCensus);
  Churn(2);
  const std::int64_t outer_before_inner = outer.count();
  {
    ScopedAllocCheck inner(EXACLIM_ALLOC_SITE("test.inner"),
                           ScopedAllocCheck::Mode::kCensus);
    Churn(3);
    // The inner region sees only its own window; the outer region sees
    // the inner's allocations too (regions are inclusive phases).
    EXPECT_GE(inner.count(), 3);
    EXPECT_GE(outer.count(), outer_before_inner + 3);
  }
  EXPECT_GE(outer.count(), 5);
}

TEST_F(AllocTrackerTest, ThreadScopeIgnoresOtherThreads) {
  ScopedAllocCheck census(EXACLIM_ALLOC_SITE("test.thread_scope"),
                          ScopedAllocCheck::Mode::kCensus,
                          ScopedAllocCheck::Scope::kThread);
  const std::int64_t before = census.count();
  std::thread t([] { Churn(50); });
  t.join();
  // Joining may allocate a little on this thread; the 50 churns on the
  // other thread must not be attributed here.
  EXPECT_LT(census.count() - before, 50);
}

TEST_F(AllocTrackerTest, GlobalScopeSeesOtherThreads) {
  ScopedAllocCheck census(EXACLIM_ALLOC_SITE("test.global_scope"),
                          ScopedAllocCheck::Mode::kCensus,
                          ScopedAllocCheck::Scope::kGlobal);
  std::thread t([] { Churn(50); });
  t.join();
  EXPECT_GE(census.count(), 50);
}

TEST_F(AllocTrackerTest, NoAllocViolationsAreCountedNotFatal) {
  ASSERT_FALSE(AllocTrackingStrict());  // env does not set strict here
  const AllocSiteId site = EXACLIM_ALLOC_SITE("test.no_alloc_site");
  std::int64_t violations = 0;
  {
    ScopedAllocCheck guard(site, ScopedAllocCheck::Mode::kAssertNoAlloc);
    ASSERT_TRUE(guard.active());
    Churn(2);
    violations = guard.violations();
  }
  EXPECT_GE(violations, 2);
  EXPECT_GE(GetAllocSite(site).violations, 2);
}

TEST_F(AllocTrackerTest, CleanNoAllocRegionStaysClean) {
  std::vector<int> preallocated(128);
  ScopedAllocCheck guard(EXACLIM_ALLOC_SITE("test.clean_guard"),
                         ScopedAllocCheck::Mode::kAssertNoAlloc);
  for (std::size_t i = 0; i < preallocated.size(); ++i) {
    preallocated[i] = static_cast<int>(i);
  }
  EXPECT_EQ(guard.violations(), 0);
}

TEST_F(AllocTrackerTest, SiteRegistryAccumulatesAndResets) {
  const AllocSiteId site = EXACLIM_ALLOC_SITE("test.registry");
  ASSERT_GE(site, 0);
  EXPECT_EQ(FindAllocSite("test.registry"), site);
  EXPECT_EQ(FindAllocSite("test.not_registered"), -1);
  {
    ScopedAllocCheck census(site, ScopedAllocCheck::Mode::kCensus);
    Churn(3);
  }
  const AllocSiteInfo info = GetAllocSite(site);
  EXPECT_STREQ(info.name, "test.registry");
  EXPECT_NE(info.file, nullptr);
  EXPECT_GT(info.line, 0);
  EXPECT_GE(info.count, 3);
  ResetAllocSiteStats();
  EXPECT_EQ(GetAllocSite(site).count, 0);
  EXPECT_EQ(GetAllocSite(site).violations, 0);
  EXPECT_STREQ(GetAllocSite(site).name, "test.registry");  // ids survive
}

TEST_F(AllocTrackerTest, ArrayAndAlignedFormsAreCounted) {
  const AllocCounters before = ThreadAllocCounters();
  {
    auto arr = std::make_unique<char[]>(256);
    Escape(arr.get());
    arr[0] = 1;
    struct alignas(64) Wide {
      char data[128];
    };
    auto wide = std::make_unique<Wide>();  // over-aligned operator new path
    Escape(wide.get());
    wide->data[0] = 1;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(wide.get()) % 64, 0u);
  }
  const AllocCounters after = ThreadAllocCounters();
  EXPECT_GE(after.count - before.count, 2);
  EXPECT_GE(after.bytes - before.bytes, 256 + 128);
  EXPECT_GE(after.free_count - before.free_count, 2);
}

TEST_F(AllocTrackerTest, CensusPublishesGaugesThroughObs) {
  obs::Options o;
  o.metrics = true;
  obs::Enable(o);
  // The sink only feeds pre-registered gauges (GaugeOrNull semantics).
  obs::Metrics()->GetGauge("alloc.count.test.gauge");
  obs::Metrics()->GetGauge("alloc.bytes.test.gauge");
  {
    ScopedAllocCheck census(EXACLIM_ALLOC_SITE("test.gauge"),
                            ScopedAllocCheck::Mode::kCensus);
    Churn(4);
  }
  auto* count_gauge = obs::GaugeOrNull("alloc.count.test.gauge");
  auto* bytes_gauge = obs::GaugeOrNull("alloc.bytes.test.gauge");
  ASSERT_NE(count_gauge, nullptr);
  ASSERT_NE(bytes_gauge, nullptr);
  EXPECT_GE(count_gauge->value(), 4.0);
  EXPECT_GE(bytes_gauge->value(), 4.0 * 64);
  obs::Disable();
}

// Many threads allocating, freeing cross-thread, and opening regions at
// once; run under TSan via the stress label. The assertions are loose —
// the point is the data-race-freedom of the thread-record registry and
// region stacks under concurrency.
TEST_F(AllocTrackerTest, AllocStress) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<std::int64_t> total_seen{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&total_seen, t] {
      for (int r = 0; r < kRounds; ++r) {
        ScopedAllocCheck census(EXACLIM_ALLOC_SITE("test.stress"),
                                ScopedAllocCheck::Mode::kCensus);
        // Mix sizes and cross-thread frees (the vector's buffer moves).
        std::vector<std::string> v;
        for (int i = 0; i < 4; ++i) {
          v.emplace_back(static_cast<std::size_t>(32 + 8 * t + i), 'x');
        }
        total_seen.fetch_add(census.count(), std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(total_seen.load(), 0);
  const AllocCounters global = GlobalAllocCounters();
  EXPECT_GE(global.count, kThreads * kRounds);
  EXPECT_GE(global.peak_live_bytes, 0);
}

}  // namespace
}  // namespace exaclim
