#include "common/sync.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.hpp"

namespace exaclim {
namespace {

TEST(Mutex, ExcludesConcurrentCriticalSections) {
  Mutex mu;
  int counter = 0;  // guarded by mu (runtime-verified below)
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(Mutex, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  std::thread contender([&] { EXPECT_FALSE(mu.TryLock()); });
  contender.join();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVar, WakesWaiterOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(lock);
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVar, PredicateWaitConvenienceForm) {
  Mutex mu;
  CondVar cv;
  int stage = 0;
  std::thread producer([&] {
    for (int s = 1; s <= 3; ++s) {
      {
        MutexLock lock(mu);
        stage = s;
      }
      cv.NotifyAll();
    }
  });
  {
    MutexLock lock(mu);
    cv.Wait(lock, [&] { return stage == 3; });
    EXPECT_EQ(stage, 3);
  }
  producer.join();
}

// --------------------------------------------------- lock-order checker --

TEST(LockOrder, IncreasingRankOrderIsAccepted) {
  Mutex low(1);
  Mutex high(2);
  std::thread t([&] {
    MutexLock l1(low);
    MutexLock l2(high);
    EXPECT_EQ(detail::HeldRankedLocks(), EXACLIM_DCHECK_ENABLED ? 2 : 0);
  });
  t.join();
}

TEST(LockOrder, DecreasingRankOrderTrapsInDebug) {
  Mutex low(1);
  Mutex high(2);
  // Run in a throwaway thread: a violation leaves that thread's
  // bookkeeping stack dirty, and thread_local state dies with it.
  std::thread t([&] {
#if EXACLIM_DCHECK_ENABLED
    MutexLock l1(high);
    EXPECT_THROW(low.Lock(), Error);
#else
    MutexLock l1(high);
    low.Lock();  // checker compiled out: any order is accepted
    low.Unlock();
#endif
  });
  t.join();
}

TEST(LockOrder, UnrankedMutexesAreExempt) {
  Mutex ranked(5);
  Mutex unranked;
  std::thread t([&] {
    MutexLock l1(ranked);
    MutexLock l2(unranked);  // rank -1 never participates in ordering
    EXPECT_EQ(detail::HeldRankedLocks(), EXACLIM_DCHECK_ENABLED ? 1 : 0);
  });
  t.join();
}

// ------------------------------------------------------ ReentrancyGuard --

TEST(ReentrancyGuard, TrapsReentrantEntryInDebug) {
  ReentrancyGuard guard;
  ReentrancyGuard::Scope outer(guard, "outer");
#if EXACLIM_DCHECK_ENABLED
  EXPECT_THROW(ReentrancyGuard::Scope inner(guard, "inner"), Error);
#else
  ReentrancyGuard::Scope inner(guard, "inner");  // inert in Release
  SUCCEED();
#endif
}

TEST(ReentrancyGuard, SequentialScopesAreFine) {
  ReentrancyGuard guard;
  { ReentrancyGuard::Scope s(guard, "first"); }
  { ReentrancyGuard::Scope s(guard, "second"); }
  SUCCEED();
}

// ------------------------------------------------- EXACLIM_CHECK/DCHECK --

TEST(Check, EvaluatesConditionExactlyOnceOnSuccess) {
  int evaluations = 0;
  EXACLIM_CHECK(++evaluations > 0, "must pass");
  EXPECT_EQ(evaluations, 1);
}

TEST(Check, EvaluatesConditionExactlyOnceOnFailure) {
  int evaluations = 0;
  EXPECT_THROW(EXACLIM_CHECK(++evaluations < 0, "always fails"), Error);
  EXPECT_EQ(evaluations, 1);
}

TEST(Check, MessageOperandsNotEvaluatedOnSuccess) {
  int message_evals = 0;
  const auto expensive = [&] {
    ++message_evals;
    return "costly";
  };
  EXACLIM_CHECK(true, expensive());
  EXPECT_EQ(message_evals, 0);
}

TEST(Check, FatalAlwaysThrowsWithContext) {
  try {
    EXACLIM_FATAL("unreachable branch " << 7);
    FAIL() << "EXACLIM_FATAL returned";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unreachable branch 7"),
              std::string::npos);
  }
}

TEST(DCheck, ActiveExactlyInDebugBuilds) {
#if EXACLIM_DCHECK_ENABLED
  EXPECT_THROW(EXACLIM_DCHECK(false, "debug check"), Error);
#else
  EXPECT_NO_THROW(EXACLIM_DCHECK(false, "debug check"));
#endif
}

TEST(DCheck, ConditionNotEvaluatedWhenDisabled) {
  int evaluations = 0;
  const auto bump = [&] {
    ++evaluations;
    return true;
  };
  EXACLIM_DCHECK(bump(), "side-effecting condition");
  EXPECT_EQ(evaluations, EXACLIM_DCHECK_ENABLED ? 1 : 0);
}

}  // namespace
}  // namespace exaclim
