#pragma once

// Finite-difference gradient checking used by the nn/model tests: compares
// each layer's analytic Backward against central differences of a scalar
// functional of Forward.

#include <cmath>
#include <functional>

#include "nn/layer.hpp"

namespace exaclim::testing {

/// Scalar functional L(y) = sum_i c_i * y_i with fixed pseudo-random
/// coefficients; its gradient w.r.t. y is just the coefficients, making a
/// clean seed for Backward.
class LinearProbe {
 public:
  explicit LinearProbe(const TensorShape& shape, std::uint64_t seed = 99) {
    Rng rng(seed);
    coeffs_ = Tensor::Uniform(shape, rng, -1.0f, 1.0f);
  }

  double Value(const Tensor& y) const {
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.NumElements(); ++i) {
      acc += static_cast<double>(coeffs_[static_cast<std::size_t>(i)]) *
             y[static_cast<std::size_t>(i)];
    }
    return acc;
  }

  const Tensor& grad() const { return coeffs_; }

 private:
  Tensor coeffs_;
};

struct GradCheckResult {
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  std::int64_t checked = 0;
};

/// Verifies dL/dinput from layer.Backward against central differences.
/// Deterministic layers only (dropout must be run with train=false or
/// p=0). Checks a strided subset when the tensor is large.
inline GradCheckResult CheckInputGradient(Layer& layer, const Tensor& input,
                                          double eps = 1e-3,
                                          std::int64_t max_checks = 200) {
  const TensorShape out_shape = layer.OutputShape(input.shape());
  LinearProbe probe(out_shape);

  (void)layer.Forward(input, /*train=*/false);
  const Tensor analytic = layer.Backward(probe.grad());

  GradCheckResult result;
  const std::int64_t n = input.NumElements();
  const std::int64_t stride = std::max<std::int64_t>(1, n / max_checks);
  Tensor perturbed = input;
  for (std::int64_t i = 0; i < n; i += stride) {
    const auto idx = static_cast<std::size_t>(i);
    const float saved = perturbed[idx];
    perturbed[idx] = saved + static_cast<float>(eps);
    const double up = probe.Value(layer.Forward(perturbed, false));
    perturbed[idx] = saved - static_cast<float>(eps);
    const double down = probe.Value(layer.Forward(perturbed, false));
    perturbed[idx] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    const double a = analytic[idx];
    const double abs_err = std::fabs(a - numeric);
    const double rel_err =
        abs_err / std::max(1.0, std::max(std::fabs(a), std::fabs(numeric)));
    result.max_abs_err = std::max(result.max_abs_err, abs_err);
    result.max_rel_err = std::max(result.max_rel_err, rel_err);
    ++result.checked;
  }
  return result;
}

/// Verifies dL/dparam for every parameter of the layer.
inline GradCheckResult CheckParamGradients(Layer& layer, const Tensor& input,
                                           double eps = 1e-3,
                                           std::int64_t max_checks = 120) {
  const TensorShape out_shape = layer.OutputShape(input.shape());
  LinearProbe probe(out_shape);

  for (Param* p : layer.Params()) p->grad.SetZero();
  (void)layer.Forward(input, /*train=*/false);
  (void)layer.Backward(probe.grad());

  GradCheckResult result;
  for (Param* p : layer.Params()) {
    const std::int64_t n = p->value.NumElements();
    const std::int64_t stride = std::max<std::int64_t>(1, n / max_checks);
    for (std::int64_t i = 0; i < n; i += stride) {
      const auto idx = static_cast<std::size_t>(i);
      const float saved = p->value[idx];
      p->value[idx] = saved + static_cast<float>(eps);
      const double up = probe.Value(layer.Forward(input, false));
      p->value[idx] = saved - static_cast<float>(eps);
      const double down = probe.Value(layer.Forward(input, false));
      p->value[idx] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double a = p->grad[idx];
      const double abs_err = std::fabs(a - numeric);
      const double rel_err =
          abs_err /
          std::max(1.0, std::max(std::fabs(a), std::fabs(numeric)));
      result.max_abs_err = std::max(result.max_abs_err, abs_err);
      result.max_rel_err = std::max(result.max_rel_err, rel_err);
      ++result.checked;
    }
  }
  return result;
}

}  // namespace exaclim::testing
