// Property sweeps over the convolution algorithm variants (Sec VI:
// cuDNN's dynamic algorithm choice is the reason the paper traced the
// API to count FLOPs): every algorithm must produce the same output,
// matching an independent naive reference, for all geometry corners.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "nn/conv.hpp"

namespace exaclim {
namespace {

// Independent reference implementation (straight from the definition,
// sharing no code with nn/conv.cpp or nn/im2col.cpp).
Tensor ReferenceConv(const Tensor& input, const Tensor& weight,
                     const Conv2d::Options& o) {
  const std::int64_t n = input.shape().n(), h = input.shape().h(),
                     w = input.shape().w();
  const std::int64_t pad =
      o.pad >= 0 ? o.pad : o.dilation * (o.kernel / 2);
  const std::int64_t eff_k = o.dilation * (o.kernel - 1) + 1;
  const std::int64_t oh = (h + 2 * pad - eff_k) / o.stride + 1;
  const std::int64_t ow = (w + 2 * pad - eff_k) / o.stride + 1;
  Tensor out(TensorShape::NCHW(n, o.out_c, oh, ow));
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t oc = 0; oc < o.out_c; ++oc) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          double acc = 0.0;
          for (std::int64_t ic = 0; ic < o.in_c; ++ic) {
            for (std::int64_t ky = 0; ky < o.kernel; ++ky) {
              for (std::int64_t kx = 0; kx < o.kernel; ++kx) {
                const std::int64_t iy =
                    oy * o.stride + ky * o.dilation - pad;
                const std::int64_t ix =
                    ox * o.stride + kx * o.dilation - pad;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                const float wv = weight[static_cast<std::size_t>(
                    ((oc * o.in_c + ic) * o.kernel + ky) * o.kernel + kx)];
                acc += static_cast<double>(wv) * input.At(b, ic, iy, ix);
              }
            }
          }
          out.At(b, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

struct GeometryCase {
  std::int64_t in_c, out_c, kernel, stride, pad, dilation;
  std::int64_t h, w;
};

class ConvAlgorithmParity
    : public ::testing::TestWithParam<std::tuple<GeometryCase, int>> {};

TEST_P(ConvAlgorithmParity, MatchesNaiveReference) {
  const auto [geo, algo_idx] = GetParam();
  const auto algo = static_cast<ConvAlgorithm>(algo_idx);
  Conv2d::Options opts{.in_c = geo.in_c, .out_c = geo.out_c,
                       .kernel = geo.kernel, .stride = geo.stride,
                       .pad = geo.pad, .dilation = geo.dilation,
                       .bias = false, .algorithm = algo};
  Rng rng(7);
  Conv2d conv("c", opts, rng);
  Rng xrng(11);
  const Tensor x = Tensor::Uniform(
      TensorShape::NCHW(2, geo.in_c, geo.h, geo.w), xrng, -1.0f, 1.0f);

  const Tensor expected = ReferenceConv(x, conv.weight().value, opts);
  const Tensor actual = conv.Forward(x, false);
  ASSERT_EQ(actual.shape(), expected.shape());
  for (std::int64_t i = 0; i < actual.NumElements(); ++i) {
    EXPECT_NEAR(actual[static_cast<std::size_t>(i)],
                expected[static_cast<std::size_t>(i)], 2e-4f)
        << ToString(algo) << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GeometrySweep, ConvAlgorithmParity,
    ::testing::Combine(
        ::testing::Values(
            GeometryCase{3, 4, 3, 1, 1, 1, 8, 9},    // plain 3x3
            GeometryCase{2, 5, 1, 1, 0, 1, 7, 7},    // pointwise
            GeometryCase{4, 2, 3, 2, 1, 1, 9, 10},   // strided
            GeometryCase{2, 3, 3, 1, 2, 2, 8, 8},    // atrous d=2
            GeometryCase{2, 3, 3, 1, -1, 2, 8, 8},   // atrous default pad
            GeometryCase{2, 2, 3, 1, -1, 4, 10, 9},  // atrous d=4 def. pad
            GeometryCase{1, 2, 5, 1, 2, 1, 10, 10},  // 5x5 (Tiramisu mod)
            GeometryCase{3, 3, 7, 2, 3, 1, 14, 14},  // stem 7x7/2
            GeometryCase{2, 2, 3, 1, 6, 6, 9, 9}),   // extreme dilation
        ::testing::Values(static_cast<int>(ConvAlgorithm::kAuto),
                          static_cast<int>(ConvAlgorithm::kIm2Col),
                          static_cast<int>(ConvAlgorithm::kImplicitGemm),
                          static_cast<int>(ConvAlgorithm::kDirect))));

TEST(ConvAlgorithm, AutoSelectsDirectForPointwise) {
  Rng rng(1);
  Conv2d pointwise("p", {.in_c = 4, .out_c = 4, .kernel = 1, .pad = 0},
                   rng);
  EXPECT_EQ(pointwise.chosen_algorithm(), ConvAlgorithm::kDirect);
  Conv2d spatial("s", {.in_c = 4, .out_c = 4, .kernel = 3}, rng);
  EXPECT_EQ(spatial.chosen_algorithm(), ConvAlgorithm::kImplicitGemm);
  Conv2d forced("f",
                {.in_c = 4, .out_c = 4, .kernel = 3,
                 .algorithm = ConvAlgorithm::kDirect},
                rng);
  EXPECT_EQ(forced.chosen_algorithm(), ConvAlgorithm::kDirect);
}

TEST(ConvAlgorithm, BackwardAgreesAcrossForwardAlgorithms) {
  // The backward pass must produce identical gradients regardless of
  // which forward algorithm ran.
  std::vector<std::vector<float>> weight_grads;
  for (const auto algo : {ConvAlgorithm::kImplicitGemm,
                          ConvAlgorithm::kIm2Col, ConvAlgorithm::kDirect}) {
    Rng rng(5);
    Conv2d conv("c",
                {.in_c = 3, .out_c = 2, .kernel = 3, .bias = false,
                 .algorithm = algo},
                rng);
    Rng xrng(6);
    const Tensor x = Tensor::Uniform(TensorShape::NCHW(1, 3, 6, 6), xrng,
                                     -1.0f, 1.0f);
    const Tensor y = conv.Forward(x, true);
    Rng grng(8);
    const Tensor g = Tensor::Uniform(y.shape(), grng, -1.0f, 1.0f);
    (void)conv.Backward(g);
    weight_grads.emplace_back(conv.weight().grad.Data().begin(),
                              conv.weight().grad.Data().end());
  }
  for (std::size_t v = 1; v < weight_grads.size(); ++v) {
    ASSERT_EQ(weight_grads[0].size(), weight_grads[v].size());
    for (std::size_t i = 0; i < weight_grads[0].size(); ++i) {
      EXPECT_NEAR(weight_grads[0][i], weight_grads[v][i], 1e-4f);
    }
  }
}

TEST(ConvAlgorithm, ToStringNames) {
  EXPECT_STREQ(ToString(ConvAlgorithm::kAuto), "auto");
  EXPECT_STREQ(ToString(ConvAlgorithm::kIm2Col), "im2col");
  EXPECT_STREQ(ToString(ConvAlgorithm::kImplicitGemm), "implicit-gemm");
  EXPECT_STREQ(ToString(ConvAlgorithm::kDirect), "direct");
}

TEST(ConvAlgorithm, ParseNames) {
  EXPECT_EQ(ParseConvAlgorithm("auto"), ConvAlgorithm::kAuto);
  EXPECT_EQ(ParseConvAlgorithm("im2col"), ConvAlgorithm::kIm2Col);
  EXPECT_EQ(ParseConvAlgorithm("implicit"), ConvAlgorithm::kImplicitGemm);
  EXPECT_EQ(ParseConvAlgorithm("implicit-gemm"),
            ConvAlgorithm::kImplicitGemm);
  EXPECT_EQ(ParseConvAlgorithm("direct"), ConvAlgorithm::kDirect);
  EXPECT_EQ(ParseConvAlgorithm("winograd"), std::nullopt);
}

}  // namespace
}  // namespace exaclim
