// Tests for the Sec VIII future-work feature: spatial model parallelism
// via H-dimension domain decomposition with halo exchange.

#include <gtest/gtest.h>

#include <cstring>

#include "comm/collectives.hpp"
#include "train/spatial_parallel.hpp"

namespace exaclim {
namespace {

Tensor FullImage(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w, std::uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::Uniform(TensorShape::NCHW(n, c, h, w), rng, -1.0f, 1.0f);
}

Tensor SlabOf(const Tensor& full, int rank, int ranks) {
  const TensorShape& s = full.shape();
  const std::int64_t local_h = s.h() / ranks;
  Tensor slab(TensorShape::NCHW(s.n(), s.c(), local_h, s.w()));
  for (std::int64_t nc = 0; nc < s.n() * s.c(); ++nc) {
    std::memcpy(slab.Raw() + nc * local_h * s.w(),
                full.Raw() + nc * s.h() * s.w() + rank * local_h * s.w(),
                sizeof(float) *
                    static_cast<std::size_t>(local_h * s.w()));
  }
  return slab;
}

TEST(ExchangeHalo, SingleRankEqualsZeroPadding) {
  SimWorld world(1);
  world.Run([](Communicator& comm) {
    const Tensor slab = FullImage(1, 2, 4, 3);
    const Tensor padded = ExchangeHaloAndPad(comm, slab, 1, 100);
    EXPECT_EQ(padded.shape(), TensorShape::NCHW(1, 2, 6, 5));
    // Borders are zero, interior matches.
    for (std::int64_t x = 0; x < 5; ++x) {
      EXPECT_EQ(padded.At(0, 0, 0, x), 0.0f);
      EXPECT_EQ(padded.At(0, 0, 5, x), 0.0f);
    }
    EXPECT_EQ(padded.At(0, 1, 1, 1), slab.At(0, 1, 0, 0));
    EXPECT_EQ(padded.At(0, 1, 4, 3), slab.At(0, 1, 3, 2));
  });
}

TEST(ExchangeHalo, NeighbourRowsArriveCorrectly) {
  const int ranks = 3;
  const Tensor full = FullImage(1, 1, 9, 4);
  SimWorld world(ranks);
  world.Run([&](Communicator& comm) {
    const Tensor slab = SlabOf(full, comm.rank(), ranks);
    const Tensor padded = ExchangeHaloAndPad(comm, slab, 1, 200);
    // Row 0 of the padded slab is the last row of the rank above (or
    // zeros at the global top).
    for (std::int64_t x = 0; x < 4; ++x) {
      const float expect_top =
          comm.rank() == 0 ? 0.0f
                           : full.At(0, 0, comm.rank() * 3 - 1, x);
      EXPECT_EQ(padded.At(0, 0, 0, x + 1), expect_top);
      const float expect_bot =
          comm.rank() == ranks - 1 ? 0.0f
                                   : full.At(0, 0, (comm.rank() + 1) * 3, x);
      EXPECT_EQ(padded.At(0, 0, 4, x + 1), expect_bot);
    }
  });
}

TEST(ExchangeHalo, BackwardIsAdjointOfForward) {
  // <Pad(x), g> == <x, PadBackward(g)> summed over all ranks — the
  // defining property that makes the distributed gradients exact.
  const int ranks = 3;
  const std::int64_t halo = 1;
  const Tensor full = FullImage(1, 2, 9, 5, 7);
  SimWorld world(ranks);
  std::vector<double> lhs(ranks), rhs(ranks);
  world.Run([&](Communicator& comm) {
    const Tensor slab = SlabOf(full, comm.rank(), ranks);
    const Tensor padded = ExchangeHaloAndPad(comm, slab, halo, 300);
    Rng grng(40 + 0);  // identical g-field construction on each rank...
    // Build a deterministic padded-gradient unique per rank position.
    Tensor g(padded.shape());
    for (std::int64_t i = 0; i < g.NumElements(); ++i) {
      g[static_cast<std::size_t>(i)] =
          0.01f * static_cast<float>((i * 31 + comm.rank() * 977) % 97) -
          0.4f;
    }
    lhs[static_cast<std::size_t>(comm.rank())] =
        static_cast<double>(padded.Dot(g));
    const Tensor back = ExchangeHaloAndPadBackward(comm, g, halo, 310);
    rhs[static_cast<std::size_t>(comm.rank())] =
        static_cast<double>(slab.Dot(back));
  });
  double lhs_total = 0, rhs_total = 0;
  for (int r = 0; r < ranks; ++r) {
    lhs_total += lhs[static_cast<std::size_t>(r)];
    rhs_total += rhs[static_cast<std::size_t>(r)];
  }
  EXPECT_NEAR(lhs_total, rhs_total, 1e-3);
}

class SpatialStackRanks : public ::testing::TestWithParam<int> {};

TEST_P(SpatialStackRanks, ForwardMatchesSingleDevice) {
  const int ranks = GetParam();
  const Tensor full = FullImage(2, 3, 12, 7, 11);
  SpatialConvStack::Options opts;
  opts.in_c = 3;
  opts.widths = {4, 2};
  opts.seed = 5;

  SpatialConvStack reference(opts);
  const Tensor expected = reference.ForwardLocal(full);

  SimWorld world(ranks);
  std::vector<Tensor> outputs(static_cast<std::size_t>(ranks));
  world.Run([&](Communicator& comm) {
    SpatialConvStack stack(opts);  // same seed -> replicated weights
    outputs[static_cast<std::size_t>(comm.rank())] =
        stack.Forward(comm, SlabOf(full, comm.rank(), ranks));
  });

  const std::int64_t local_h = 12 / ranks;
  for (int r = 0; r < ranks; ++r) {
    const Tensor& out = outputs[static_cast<std::size_t>(r)];
    ASSERT_EQ(out.shape(), TensorShape::NCHW(2, 2, local_h, 7));
    for (std::int64_t n = 0; n < 2; ++n) {
      for (std::int64_t c = 0; c < 2; ++c) {
        for (std::int64_t y = 0; y < local_h; ++y) {
          for (std::int64_t x = 0; x < 7; ++x) {
            EXPECT_NEAR(out.At(n, c, y, x),
                        expected.At(n, c, r * local_h + y, x), 1e-5f)
                << "rank " << r;
          }
        }
      }
    }
  }
}

TEST_P(SpatialStackRanks, BackwardGradientsMatchSingleDevice) {
  const int ranks = GetParam();
  const Tensor full = FullImage(1, 2, 12, 6, 13);
  SpatialConvStack::Options opts;
  opts.in_c = 2;
  opts.widths = {3};
  opts.seed = 9;

  // Reference gradients.
  SpatialConvStack reference(opts);
  const Tensor ref_out = reference.ForwardLocal(full);
  Tensor seed_grad(ref_out.shape());
  for (std::int64_t i = 0; i < seed_grad.NumElements(); ++i) {
    seed_grad[static_cast<std::size_t>(i)] =
        0.05f * static_cast<float>((i * 17) % 23) - 0.5f;
  }
  const Tensor ref_grad_in = reference.BackwardLocal(seed_grad);
  const Tensor ref_wgrad = reference.Params()[0]->grad;

  SimWorld world(ranks);
  std::vector<Tensor> grad_ins(static_cast<std::size_t>(ranks));
  std::vector<Tensor> summed_wgrad(static_cast<std::size_t>(ranks));
  const std::int64_t local_h = 12 / ranks;
  world.Run([&](Communicator& comm) {
    SpatialConvStack stack(opts);
    const Tensor out =
        stack.Forward(comm, SlabOf(full, comm.rank(), ranks));
    // This rank's share of the seed gradient.
    Tensor local_seed = SlabOf(seed_grad, comm.rank(), ranks);
    grad_ins[static_cast<std::size_t>(comm.rank())] =
        stack.Backward(comm, local_seed);
    // Weight gradients are partial: sum across ranks (model-parallel
    // reduction).
    Tensor wgrad = stack.Params()[0]->grad;
    Allreduce(comm, wgrad.Data(), AllreduceAlgo::kRing, 5000);
    summed_wgrad[static_cast<std::size_t>(comm.rank())] = wgrad;
    (void)out;
  });

  // Input gradients: each rank's slab matches the reference slab.
  for (int r = 0; r < ranks; ++r) {
    const Tensor& g = grad_ins[static_cast<std::size_t>(r)];
    for (std::int64_t c = 0; c < 2; ++c) {
      for (std::int64_t y = 0; y < local_h; ++y) {
        for (std::int64_t x = 0; x < 6; ++x) {
          EXPECT_NEAR(g.At(0, c, y, x),
                      ref_grad_in.At(0, c, r * local_h + y, x), 1e-5f)
              << "rank " << r;
        }
      }
    }
  }
  // Summed weight gradient equals the full-image weight gradient.
  for (std::int64_t i = 0; i < ref_wgrad.NumElements(); ++i) {
    EXPECT_NEAR(summed_wgrad[0][static_cast<std::size_t>(i)],
                ref_wgrad[static_cast<std::size_t>(i)], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Decompositions, SpatialStackRanks,
                         ::testing::Values(1, 2, 3, 4));

TEST(SpatialStack, FiveByFiveKernelUsesHaloTwo) {
  SpatialConvStack::Options opts;
  opts.in_c = 1;
  opts.widths = {2};
  opts.kernel = 5;
  SpatialConvStack stack(opts);
  EXPECT_EQ(stack.halo(), 2);

  const Tensor full = FullImage(1, 1, 12, 8, 21);
  SpatialConvStack reference(opts);
  const Tensor expected = reference.ForwardLocal(full);
  SimWorld world(2);
  std::vector<Tensor> outputs(2);
  world.Run([&](Communicator& comm) {
    SpatialConvStack replica(opts);
    outputs[static_cast<std::size_t>(comm.rank())] =
        replica.Forward(comm, SlabOf(full, comm.rank(), 2));
  });
  for (int r = 0; r < 2; ++r) {
    for (std::int64_t y = 0; y < 6; ++y) {
      for (std::int64_t x = 0; x < 8; ++x) {
        EXPECT_NEAR(outputs[static_cast<std::size_t>(r)].At(0, 0, y, x),
                    expected.At(0, 0, r * 6 + y, x), 1e-5f);
      }
    }
  }
}

}  // namespace
}  // namespace exaclim
