// Cross-module integration tests: the full data plane + training stack
// wired together the way the paper's production runs were, plus
// end-to-end determinism guarantees.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>

#include "io/pipeline.hpp"
#include "io/sample_io.hpp"
#include "io/staging.hpp"
#include "train/checkpoint.hpp"
#include "train/trainer.hpp"

namespace exaclim {
namespace {

namespace fs = std::filesystem;

ClimateDataset::Options DataOptions() {
  ClimateDataset::Options d;
  d.num_samples = 40;
  d.generator.height = 32;
  d.generator.width = 32;
  d.channels = {kTMQ, kU850, kV850, kPSL};
  return d;
}

TrainerOptions TrainOptions() {
  TrainerOptions o;
  o.arch = TrainerOptions::Arch::kTiramisu;
  o.tiramisu = Tiramisu::Config::Downscaled(4);
  o.learning_rate = 2e-3f;
  o.exchanger.transport = ReduceTransport::kMpiRing;
  return o;
}

TEST(Integration, FullDataPlaneToTraining) {
  // Dataset -> NCF files on a counted "global filesystem" -> distributed
  // staging -> node-local files -> prefetching pipeline -> training.
  const fs::path dir =
      fs::temp_directory_path() /
      ("exaclim_integration_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  const int num_files = 12;
  ClimateGenerator gen({.height = 32, .width = 32});
  HeuristicLabeler labeler;
  MockGlobalFs global_fs;
  for (int f = 0; f < num_files; ++f) {
    ClimateSample s = gen.Generate(5, f);
    labeler.LabelInPlace(s);
    const fs::path p = dir / ("f" + std::to_string(f) + ".ncf");
    WriteSampleFile(p, s);
    std::ifstream in(p, std::ios::binary);
    std::vector<std::byte> bytes(
        static_cast<std::size_t>(fs::file_size(p)));
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    global_fs.Put(f, std::move(bytes));
  }

  // Stage across 4 ranks; rank 0's staged set feeds the pipeline.
  std::map<int, std::vector<std::byte>> rank0_files;
  SimWorld world(4);
  world.Run([&](Communicator& comm) {
    std::set<int> needs;
    for (int f = comm.rank(); f < num_files; f += 2) {
      needs.insert(f % num_files);
    }
    auto staged = StageDataset(comm, global_fs, needs, num_files);
    if (comm.rank() == 0) rank0_files = std::move(staged);
  });
  ASSERT_FALSE(rank0_files.empty());
  for (const int f : {0, 2, 4}) EXPECT_EQ(global_fs.reads(f), 1);

  const fs::path local = dir / "local";
  fs::create_directories(local);
  std::vector<fs::path> paths;
  for (const auto& [id, bytes] : rank0_files) {
    const fs::path p = local / ("staged" + std::to_string(id) + ".ncf");
    std::ofstream out(p, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    paths.push_back(p);
  }

  InputPipeline pipeline(
      [&](std::int64_t index) {
        const ClimateSample s = ReadSampleFile(
            paths[static_cast<std::size_t>(index) % paths.size()]);
        Batch b;
        // Select the 4 training channels from the full 16-channel file.
        const std::int64_t hw = s.height * s.width;
        b.fields = Tensor(TensorShape::NCHW(1, 4, s.height, s.width));
        const int chans[4] = {kTMQ, kU850, kV850, kPSL};
        for (int c = 0; c < 4; ++c) {
          std::memcpy(b.fields.Raw() + c * hw,
                      s.fields.Raw() + chans[c] * hw,
                      sizeof(float) * static_cast<std::size_t>(hw));
        }
        b.labels = s.labels;
        return b;
      },
      20, {.workers = 2, .prefetch_depth = 2});

  const std::array<double, 3> freq{0.975, 0.022, 0.003};
  RankTrainer trainer(TrainOptions(),
                      MakeClassWeights(freq, WeightingScheme::kInverseSqrt),
                      0);
  int steps = 0;
  double first = 0, last = 0;
  while (auto batch = pipeline.Next()) {
    const auto r = trainer.Step(*batch);
    if (steps == 0) first = r.loss;
    last = r.loss;
    ++steps;
  }
  EXPECT_EQ(steps, 20);
  EXPECT_LT(last, first);
  fs::remove_all(dir);
}

TEST(Integration, RepeatedRunsAgreeToRoundingLevel) {
  // Across runs, the control plane's negotiated tensor order depends on
  // message arrival timing (exactly as in real Horovod), which permutes
  // the fusion buffer and hence the ring-shard boundaries — so repeated
  // runs agree only up to FP32 reduction rounding. (Bit-identity ACROSS
  // RANKS within one run is guaranteed and tested in test_train.)
  const ClimateDataset dataset(DataOptions());
  const auto a = RunDistributedTraining(TrainOptions(), dataset, 3, 8, 8);
  const auto b = RunDistributedTraining(TrainOptions(), dataset, 3, 8, 8);
  ASSERT_EQ(a.loss_history.size(), b.loss_history.size());
  for (std::size_t i = 0; i < a.loss_history.size(); ++i) {
    EXPECT_NEAR(a.loss_history[i], b.loss_history[i],
                1e-3 * std::max(1.0, a.loss_history[i]))
        << "step " << i;
  }
}

TEST(Integration, SingleRankRunsAreBitDeterministic) {
  // With one rank there is no negotiation race: repeated runs are
  // bit-identical.
  const ClimateDataset dataset(DataOptions());
  const auto a = RunDistributedTraining(TrainOptions(), dataset, 1, 8, 8);
  const auto b = RunDistributedTraining(TrainOptions(), dataset, 1, 8, 8);
  EXPECT_EQ(a.loss_history, b.loss_history);
}

TEST(Integration, CheckpointResumeContinuesTraining) {
  const ClimateDataset dataset(DataOptions());
  const auto freq = dataset.MeasureFrequencies(8);
  const auto weights = MakeClassWeights(freq, WeightingScheme::kInverseSqrt);
  const fs::path path =
      fs::temp_directory_path() /
      ("exaclim_resume_" + std::to_string(::getpid()) + ".ncf");

  // Phase 1: train, checkpoint, record evaluation.
  double miou_at_checkpoint = 0.0;
  {
    RankTrainer trainer(TrainOptions(), weights, 0);
    Rng rng(3);
    for (int s = 0; s < 30; ++s) {
      std::vector<std::int64_t> idx{
          rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1)};
      (void)trainer.Step(dataset.MakeBatch(DatasetSplit::kTrain, idx));
    }
    SaveCheckpoint(path, trainer.params());
    miou_at_checkpoint =
        trainer.Evaluate(dataset, DatasetSplit::kValidation, 3).MeanIoU();
  }

  // Phase 2: restore into a fresh process-equivalent and verify the
  // evaluation carries over, then keep training without blowing up.
  {
    RankTrainer trainer(TrainOptions(), weights, 0);
    LoadCheckpoint(path, trainer.params());
    const double miou_restored =
        trainer.Evaluate(dataset, DatasetSplit::kValidation, 3).MeanIoU();
    // Running batch-norm stats are fresh (not checkpointed), so allow a
    // small difference.
    EXPECT_NEAR(miou_restored, miou_at_checkpoint, 0.15);
    Rng rng(4);
    for (int s = 0; s < 5; ++s) {
      std::vector<std::int64_t> idx{
          rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1)};
      const auto r =
          trainer.Step(dataset.MakeBatch(DatasetSplit::kTrain, idx));
      EXPECT_TRUE(std::isfinite(r.loss));
    }
  }
  fs::remove(path);
}

TEST(Integration, HeuristicLabelsDriveLearnableSignal) {
  // The whole premise: a network trained on heuristic labels recovers
  // the PLANTED ground truth better than chance — i.e. the heuristics
  // transfer the physical signal (Sec VIII-A's bootstrapping idea).
  ClimateDataset::Options opts = DataOptions();
  const ClimateDataset dataset(opts);
  const auto freq = dataset.MeasureFrequencies(8);
  RankTrainer trainer(TrainOptions(),
                      MakeClassWeights(freq, WeightingScheme::kInverseSqrt),
                      0);
  Rng rng(6);
  for (int s = 0; s < 80; ++s) {
    std::vector<std::int64_t> idx{
        rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1)};
    (void)trainer.Step(dataset.MakeBatch(DatasetSplit::kTrain, idx));
  }
  // Evaluate against the PLANTED truth, not the heuristic labels.
  ConfusionMatrix cm(kNumClimateClasses);
  for (std::int64_t i = 0; i < 4; ++i) {
    const auto sample = dataset.GetSample(DatasetSplit::kValidation, i);
    Batch batch = dataset.MakeBatch(DatasetSplit::kValidation,
                                    std::vector<std::int64_t>{i});
    const Tensor logits = trainer.model().Forward(batch.fields, false);
    cm.Add(PredictClasses(logits), sample.truth);
  }
  EXPECT_GT(cm.PixelAccuracy(), 0.95);
  EXPECT_GT(cm.MeanIoU(), 0.35);  // far above all-BG collapse (~0.33)
}

}  // namespace
}  // namespace exaclim
