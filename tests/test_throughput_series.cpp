#include <gtest/gtest.h>

#include "netsim/throughput_series.hpp"

namespace exaclim {
namespace {

ScaleSimulator Summit() {
  ScaleOptions o;
  o.machine = MachineModel::Summit();
  o.spec = PaperDeepLabSpec(16);
  o.precision = Precision::kFP16;
  o.local_batch = 2;
  o.lag = 1;
  o.anchor_samples_per_sec = 2.67;
  o.anchor_tf_per_sample = 14.41;
  return ScaleSimulator(o);
}

TEST(ThroughputSeries, MedianTracksClosedFormModel) {
  const ScaleSimulator sim = Summit();
  const auto series = SampleThroughputSeries(sim, 1536, 60, 7);
  const ScalePoint p = sim.Simulate(1536);
  // The stochastic median sits near the closed-form expectation (the
  // closed form uses E[max], the realised median of max is close).
  EXPECT_NEAR(series.summary.median, p.images_per_sec,
              0.05 * p.images_per_sec);
}

TEST(ThroughputSeries, CentralCIIsAsymmetricAndOrdered) {
  const auto series = SampleThroughputSeries(Summit(), 6144, 80, 11);
  EXPECT_LT(series.summary.lo, series.summary.median);
  EXPECT_GT(series.summary.hi, series.summary.median);
  // Throughput noise is bounded above by the deterministic step floor:
  // the distribution is left-skewed (slow steps, never faster-than-ideal
  // ones beyond the straggler-free floor).
  EXPECT_GT(series.summary.hi - series.summary.lo, 0.0);
}

TEST(ThroughputSeries, DeterministicPerSeed) {
  const ScaleSimulator sim = Summit();
  const auto a = SampleThroughputSeries(sim, 96, 30, 3);
  const auto b = SampleThroughputSeries(sim, 96, 30, 3);
  EXPECT_EQ(a.images_per_sec, b.images_per_sec);
  const auto c = SampleThroughputSeries(sim, 96, 30, 4);
  EXPECT_NE(a.images_per_sec, c.images_per_sec);
}

TEST(ThroughputSeries, RelativeSpreadShrinksWithScale) {
  // The max of many per-rank delays concentrates: at larger P the
  // step-to-step variability of the max (and hence of throughput) is
  // relatively smaller, even though its mean is larger.
  const ScaleSimulator sim = Summit();
  const auto small = SampleThroughputSeries(sim, 24, 100, 5);
  const auto large = SampleThroughputSeries(sim, 6144, 100, 5);
  const double spread_small =
      (small.summary.hi - small.summary.lo) / small.summary.median;
  const double spread_large =
      (large.summary.hi - large.summary.lo) / large.summary.median;
  EXPECT_LT(spread_large, spread_small);
}

TEST(ThroughputSeries, PflopsMedianUsesOpCountAnchor) {
  const auto series = SampleThroughputSeries(Summit(), 27360, 40, 9);
  // ~66000 images/s x 14.41 TF / 1000 ~ 950 PF/s.
  EXPECT_GT(series.pflops_median, 850.0);
  EXPECT_LT(series.pflops_median, 1050.0);
}

}  // namespace
}  // namespace exaclim
