#include <gtest/gtest.h>

#include <vector>

#include "netsim/event_engine.hpp"

namespace exaclim {
namespace {

TEST(EventEngine, ProcessesInTimeOrder) {
  EventEngine engine;
  std::vector<int> order;
  engine.Schedule(3.0, [&](double) { order.push_back(3); });
  engine.Schedule(1.0, [&](double) { order.push_back(1); });
  engine.Schedule(2.0, [&](double) { order.push_back(2); });
  EXPECT_DOUBLE_EQ(engine.Run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventEngine, HandlersCanScheduleMoreEvents) {
  EventEngine engine;
  int fired = 0;
  engine.Schedule(1.0, [&](double now) {
    ++fired;
    engine.Schedule(now + 1.0, [&](double) { ++fired; });
  });
  engine.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
}

TEST(EventEngine, EqualTimesKeepFifoOrder) {
  EventEngine engine;
  std::vector<int> order;
  engine.Schedule(1.0, [&](double) { order.push_back(0); });
  engine.Schedule(1.0, [&](double) { order.push_back(1); });
  engine.Schedule(1.0, [&](double) { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventEngine, RejectsSchedulingIntoPast) {
  EventEngine engine;
  engine.Schedule(2.0, [&](double) {
    EXPECT_THROW(engine.Schedule(1.0, [](double) {}), Error);
  });
  engine.Run();
}

// ----------------------------------------------------- SimulateOverlap --

OverlapConfig BaseConfig() {
  OverlapConfig c;
  c.compute_seconds = 1.0;
  c.bucket_ready_s = {0.25, 0.5, 0.75, 1.0};
  c.bucket_bytes = {10.0, 10.0, 10.0, 10.0};
  c.bandwidth = 1000.0;  // each transfer 0.01 s
  c.latency = 0.0;
  c.steps = 24;
  return c;
}

TEST(SimulateOverlap, NoCommunicationGivesPureComputeStep) {
  OverlapConfig c = BaseConfig();
  c.bucket_bytes.clear();
  c.bucket_ready_s.clear();
  const auto r = SimulateOverlap(c);
  EXPECT_NEAR(r.steady_step_seconds, 1.0, 1e-9);
  EXPECT_NEAR(r.exposed_comm_seconds, 0.0, 1e-9);
}

TEST(SimulateOverlap, CheapCommunicationMostlyHidesWithoutLag) {
  const auto r = SimulateOverlap(BaseConfig());
  // Only the final bucket (ready exactly at compute end) is exposed.
  EXPECT_NEAR(r.steady_step_seconds, 1.01, 1e-6);
  EXPECT_NEAR(r.exposed_comm_seconds, 0.01, 1e-6);
}

TEST(SimulateOverlap, LagHidesTheLastBucket) {
  OverlapConfig c = BaseConfig();
  c.lag = 1;
  const auto r = SimulateOverlap(c);
  EXPECT_NEAR(r.steady_step_seconds, 1.0, 1e-6);
  EXPECT_NEAR(r.exposed_comm_seconds, 0.0, 1e-6);
}

TEST(SimulateOverlap, NetworkBoundStepWhenCommDominates) {
  OverlapConfig c = BaseConfig();
  c.bandwidth = 10.0;  // each transfer 1 s; total comm 4 s >> compute
  // Lag 0: the next step's compute (and bucket production) cannot start
  // until the previous reductions finish, so the network idles for the
  // first bucket's 0.25 s production time each step: period 4.25 s.
  c.lag = 0;
  EXPECT_NEAR(SimulateOverlap(c).steady_step_seconds, 4.25, 0.05);
  // Lag 1 keeps two steps in flight; the queue never drains and the
  // period is the pure network time, 4.0 s.
  c.lag = 1;
  const auto r = SimulateOverlap(c);
  EXPECT_NEAR(r.steady_step_seconds, 4.0, 0.05);
  EXPECT_GT(r.network_busy_fraction, 0.9);
}

TEST(SimulateOverlap, LagNeverSlowerThanNoLag) {
  for (const double bw : {20.0, 100.0, 1000.0}) {
    OverlapConfig c = BaseConfig();
    c.bandwidth = bw;
    c.lag = 0;
    const double no_lag = SimulateOverlap(c).steady_step_seconds;
    c.lag = 1;
    const double lag = SimulateOverlap(c).steady_step_seconds;
    EXPECT_LE(lag, no_lag + 1e-9) << "bw=" << bw;
  }
}

TEST(SimulateOverlap, LatencyMakesManySmallBucketsWorseThanFewLarge) {
  // The tensor-fusion rationale: same bytes, many buckets pay the
  // per-message latency repeatedly.
  OverlapConfig many = BaseConfig();
  many.latency = 0.05;
  many.bucket_ready_s.clear();
  many.bucket_bytes.clear();
  for (int i = 0; i < 20; ++i) {
    many.bucket_ready_s.push_back(0.05 * (i + 1));
    many.bucket_bytes.push_back(2.0);
  }
  OverlapConfig few = many;
  few.bucket_ready_s = {0.5, 1.0};
  few.bucket_bytes = {20.0, 20.0};
  EXPECT_GT(SimulateOverlap(many).steady_step_seconds,
            SimulateOverlap(few).steady_step_seconds);
}

TEST(SimulateOverlap, AgreesWithClosedFormExtremes) {
  // The closed-form model in scale.cpp treats exposed comm as
  // max(0, A - overlap_budget); the event simulation must agree at the
  // extremes (A -> 0 and A >> C).
  OverlapConfig c = BaseConfig();
  c.bandwidth = 1e9;  // A ~ 0
  EXPECT_NEAR(SimulateOverlap(c).exposed_comm_seconds, 0.0, 1e-6);
  c.bandwidth = 4.0;  // A = 10 s >> C
  const auto r = SimulateOverlap(c);
  // Lag 0 adds the first bucket's production delay (0.25 s) per step.
  EXPECT_NEAR(r.steady_step_seconds, 10.25, 0.05);
}

// ------------------------------------------------- BuildOverlapConfig --

TEST(BuildOverlapConfig, BucketsCoverAllParameters) {
  const ArchSpec spec = PaperTiramisuSpec(16);
  const auto config = BuildOverlapConfig(spec, MachineModel::Summit(),
                                         Precision::kFP32, 1.0,
                                         4 << 20, 0);
  double total_bytes = 0.0;
  for (const double b : config.bucket_bytes) total_bytes += b;
  EXPECT_NEAR(total_bytes, spec.TotalParams() * 4.0, 1.0);
  // Readiness offsets are ascending and within the compute window.
  for (std::size_t i = 1; i < config.bucket_ready_s.size(); ++i) {
    EXPECT_GE(config.bucket_ready_s[i], config.bucket_ready_s[i - 1]);
  }
  EXPECT_LE(config.bucket_ready_s.back(), 1.0 + 1e-9);
}

TEST(BuildOverlapConfig, SmallerFusionMakesMoreBuckets) {
  const ArchSpec spec = PaperDeepLabSpec(16);
  const auto fused = BuildOverlapConfig(spec, MachineModel::Summit(),
                                        Precision::kFP32, 1.0, 64 << 20, 0);
  const auto split = BuildOverlapConfig(spec, MachineModel::Summit(),
                                        Precision::kFP32, 1.0, 1 << 20, 0);
  EXPECT_GT(split.bucket_bytes.size(), fused.bucket_bytes.size());
}

TEST(BuildOverlapConfig, EndToEndDeepLabStepMostlyOverlaps) {
  // Full-network sanity: at Summit bandwidth the DeepLab gradient hides
  // almost entirely behind the 1.15 s FP32 compute step.
  const ArchSpec spec = PaperDeepLabSpec(16);
  const auto config = BuildOverlapConfig(spec, MachineModel::Summit(),
                                         Precision::kFP32, 1.149,
                                         4 << 20, 1);
  const auto r = SimulateOverlap(config);
  EXPECT_LT(r.exposed_comm_seconds, 0.02);
  EXPECT_NEAR(r.steady_step_seconds, 1.149, 0.03);
}

}  // namespace
}  // namespace exaclim
