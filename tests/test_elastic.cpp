// Elastic-training tests (DESIGN §13): deadline-aware collectives under
// rank death (the kill-position matrix), survivor-consensus world
// rebuild, live-peer weight resync, bit-identity of elastic-on with no
// faults, and the seeded chaos soak that kills two ranks mid-run.
//
// Deadlines in here are deliberately generous: dead-rank detection is
// poll-sliced (~25 ms regardless of where in the topology the victim
// sits), so a big deadline costs nothing on the failure path while
// keeping slow-machine (TSan) runs free of spurious timeouts.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/elastic.hpp"
#include "comm/world.hpp"
#include "common/fault.hpp"
#include "hvd/hybrid.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "stats/stats.hpp"
#include "train/trainer.hpp"

namespace exaclim {
namespace {

struct FaultScope {
  FaultScope() { FaultInjector::Global().Reset(); }
  ~FaultScope() { FaultInjector::Global().Reset(); }
};

ClimateDataset::Options TinyData() {
  ClimateDataset::Options o;
  o.num_samples = 40;
  o.generator.height = 32;
  o.generator.width = 32;
  o.channels = {kTMQ, kU850, kV850, kPSL};
  return o;
}

TrainerOptions TinyElasticTrainer() {
  TrainerOptions o;
  o.arch = TrainerOptions::Arch::kTiramisu;
  o.tiramisu = Tiramisu::Config::Downscaled(4);
  o.learning_rate = 2e-3f;
  o.exchanger.transport = ReduceTransport::kMpiRing;
  o.elastic.enabled = true;
  // Failure detection does not wait for these (dead-rank scans fire
  // within a slice); they only bound genuinely wedged peers.
  o.elastic.collective_timeout_s = 30.0;
  o.elastic.rebuild_timeout_s = 20.0;
  return o;
}

// ------------------------------------------------- ElasticOptions env --

TEST(ElasticOptionsEnv, FromEnvOverridesProgrammaticOptions) {
  ::setenv("EXACLIM_ELASTIC", "1", 1);
  ::setenv("EXACLIM_ELASTIC_TIMEOUT", "2.5", 1);
  ::setenv("EXACLIM_ELASTIC_REBUILD_TIMEOUT", "7.25", 1);
  const ElasticOptions on = ElasticOptions::FromEnv(ElasticOptions{});
  EXPECT_TRUE(on.enabled);
  EXPECT_DOUBLE_EQ(on.collective_timeout_s, 2.5);
  EXPECT_DOUBLE_EQ(on.rebuild_timeout_s, 7.25);

  ::setenv("EXACLIM_ELASTIC", "off", 1);
  ElasticOptions base;
  base.enabled = true;
  EXPECT_FALSE(ElasticOptions::FromEnv(base).enabled);

  ::unsetenv("EXACLIM_ELASTIC");
  ::unsetenv("EXACLIM_ELASTIC_TIMEOUT");
  ::unsetenv("EXACLIM_ELASTIC_REBUILD_TIMEOUT");
  EXPECT_FALSE(ElasticOptions::FromEnv(ElasticOptions{}).enabled);
}

// ------------------------------------------------------------ Deadline --

TEST(Deadline, UnboundedNeverExpires) {
  const Deadline d(kNoTimeout);
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.Remaining(), kNoTimeout);
}

TEST(Deadline, BoundedCountsDownAndExpires) {
  const Deadline d(0.05);
  EXPECT_LE(d.Remaining(), 0.05);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.Remaining(), 0.0);
}

// --------------------------------------------- collective kill matrix --
//
// (algorithm) x (killed-rank position): every survivor's bounded
// collective must return kPeerDead naming the actual victim — including
// survivors whose wait edge is with a live peer that is itself stuck —
// and must never hang.

enum class Scheme { kRing, kTree, kHybrid };

void RunKillMatrixCase(Scheme scheme, int victim) {
  const int n = scheme == Scheme::kHybrid ? 4 : 6;
  HybridAllreduceOptions hybrid;
  hybrid.topology.ranks_per_node = 2;
  hybrid.mpi_ranks_per_node = 2;

  std::atomic<int> survivors_checked{0};
  SimWorld world(n);
  world.Run([&](Communicator& comm) {
    if (comm.rank() == victim) {
      comm.KillSelf();
      return;
    }
    std::vector<float> data(64, static_cast<float>(comm.rank() + 1));
    const Deadline deadline(30.0);
    CollectiveResult r;
    switch (scheme) {
      case Scheme::kRing:
        r = TryAllreduce(comm, data, AllreduceAlgo::kRing, deadline);
        break;
      case Scheme::kTree:
        r = TryAllreduce(comm, data, AllreduceAlgo::kTree, deadline);
        break;
      case Scheme::kHybrid:
        r = TryHybridAllreduce(comm, data, hybrid, deadline);
        break;
    }
    EXPECT_EQ(r.status, CollectiveStatus::kPeerDead)
        << "rank " << comm.rank() << " got " << ToString(r.status);
    EXPECT_EQ(r.suspect_rank, victim) << "rank " << comm.rank();
    survivors_checked.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(survivors_checked.load(), n - 1);
}

TEST(CollectiveKillMatrix, RingFirstRankDies) {
  RunKillMatrixCase(Scheme::kRing, 0);
}
TEST(CollectiveKillMatrix, RingMiddleRankDies) {
  RunKillMatrixCase(Scheme::kRing, 3);
}
TEST(CollectiveKillMatrix, RingLastRankDies) {
  RunKillMatrixCase(Scheme::kRing, 5);
}
TEST(CollectiveKillMatrix, TreeFirstRankDies) {
  RunKillMatrixCase(Scheme::kTree, 0);
}
TEST(CollectiveKillMatrix, TreeMiddleRankDies) {
  RunKillMatrixCase(Scheme::kTree, 3);
}
TEST(CollectiveKillMatrix, TreeLastRankDies) {
  RunKillMatrixCase(Scheme::kTree, 5);
}
TEST(CollectiveKillMatrix, HybridFirstRankDies) {
  RunKillMatrixCase(Scheme::kHybrid, 0);
}
TEST(CollectiveKillMatrix, HybridMiddleRankDies) {
  RunKillMatrixCase(Scheme::kHybrid, 1);
}
TEST(CollectiveKillMatrix, HybridLastRankDies) {
  RunKillMatrixCase(Scheme::kHybrid, 3);
}

TEST(CollectiveKillMatrix, BarrierReportsTheDeadRank) {
  SimWorld world(4);
  world.Run([&](Communicator& comm) {
    if (comm.rank() == 2) {
      comm.KillSelf();
      return;
    }
    const CollectiveResult r = TryBarrier(comm, Deadline(30.0));
    EXPECT_EQ(r.status, CollectiveStatus::kPeerDead);
    EXPECT_EQ(r.suspect_rank, 2);
  });
}

// -------------------------------------------------------- ElasticWorld --

TEST(ElasticWorld, InitialViewIsIdentity) {
  SimWorld world(3);
  world.Run([&](Communicator& comm) {
    ElasticOptions eo;
    eo.enabled = true;
    const ElasticWorld elastic(comm, eo);
    EXPECT_EQ(elastic.generation(), 0);
    EXPECT_EQ(elastic.view().size(), 3);
    EXPECT_EQ(elastic.view().my_index, comm.rank());
    EXPECT_EQ(elastic.GenTag(42), 42);
  });
}

void RunRebuildCase(int world_size, int victim) {
  std::atomic<int> rebuilt{0};
  SimWorld world(world_size);
  world.Run([&](Communicator& comm) {
    ElasticOptions eo;
    eo.enabled = true;
    eo.rebuild_timeout_s = 20.0;
    ElasticWorld elastic(comm, eo);
    if (comm.rank() == victim) {
      comm.KillSelf();
      return;
    }
    // Mirrors training: a failed exchange precedes Rebuild, so by the
    // time survivors enter the consensus the death is observable.
    while (!comm.PeerDead(victim)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const CollectiveResult r = elastic.Rebuild();
    ASSERT_TRUE(r.ok()) << "rank " << comm.rank() << ": "
                        << ToString(r.status);
    EXPECT_EQ(elastic.generation(), 1);
    const ElasticView& view = elastic.view();
    EXPECT_EQ(view.size(), world_size - 1);
    EXPECT_FALSE(view.IsMember(victim));
    EXPECT_EQ(view.my_index, view.IndexOf(comm.rank()));
    // Members are the ascending survivors, densely re-ranked.
    int expected_index = 0;
    for (int rank = 0; rank < world_size; ++rank) {
      if (rank == victim) continue;
      EXPECT_EQ(view.WorldRank(expected_index), rank);
      ++expected_index;
    }
    // Tags moved to the new generation's namespace.
    EXPECT_EQ(elastic.GenTag(42), 42 + kGenTagStride);
    rebuilt.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(rebuilt.load(), world_size - 1);
}

TEST(ElasticWorld, RebuildDropsAMiddleRank) { RunRebuildCase(5, 2); }

TEST(ElasticWorld, RebuildSurvivesRootDeath) {
  // Killing rank 0 forces the consensus to elect a new tree root.
  RunRebuildCase(5, 0);
}

TEST(ElasticWorld, BackToBackRebuilds) {
  SimWorld world(4);
  std::atomic<int> completed{0};
  world.Run([&](Communicator& comm) {
    ElasticOptions eo;
    eo.enabled = true;
    eo.rebuild_timeout_s = 20.0;
    ElasticWorld elastic(comm, eo);
    for (const int victim : {3, 1}) {
      if (comm.rank() == victim) {
        comm.KillSelf();
        return;
      }
      while (!comm.PeerDead(victim)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const CollectiveResult r = elastic.Rebuild();
      ASSERT_TRUE(r.ok()) << "rank " << comm.rank();
    }
    EXPECT_EQ(elastic.generation(), 2);
    EXPECT_EQ(elastic.view().size(), 2);
    EXPECT_TRUE(elastic.view().IsMember(0));
    EXPECT_TRUE(elastic.view().IsMember(2));
    completed.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(completed.load(), 2);
}

// ------------------------------------------------------------- Resync --

TEST(ElasticResync, BroadcastRealignsDivergedReplicas) {
  const TrainerOptions opts = TinyElasticTrainer();
  const std::vector<float> class_weights(
      static_cast<std::size_t>(kNumClimateClasses), 1.0f);
  const int ranks = 3;
  std::vector<std::uint32_t> crcs(static_cast<std::size_t>(ranks), 0);
  std::vector<std::int64_t> bytes(static_cast<std::size_t>(ranks), 0);
  SimWorld world(ranks);
  world.Run([&](Communicator& comm) {
    RankTrainer trainer(opts, class_weights, comm.rank());
    ElasticWorld elastic(comm, opts.elastic);
    if (comm.rank() != 0) {
      // Diverge the non-root replicas; resync must erase this.
      auto data = trainer.params().front()->value.Data();
      data[0] += static_cast<float>(comm.rank());
    }
    std::int64_t b = 0;
    const CollectiveResult r = trainer.ResyncFromRoot(comm, elastic, &b);
    ASSERT_TRUE(r.ok()) << "rank " << comm.rank();
    crcs[static_cast<std::size_t>(comm.rank())] = trainer.ParamsCrc32();
    bytes[static_cast<std::size_t>(comm.rank())] = b;
  });
  EXPECT_NE(crcs[0], 0u);
  EXPECT_EQ(crcs[1], crcs[0]);
  EXPECT_EQ(crcs[2], crcs[0]);
  for (const std::int64_t b : bytes) {
    EXPECT_GT(b, 0);
    EXPECT_EQ(b, bytes[0]);
  }
}

// ------------------------------------------------------- bit identity --

TEST(ElasticBitIdentity, ElasticOnWithNoFaultsMatchesElasticOff) {
  // The same binary with elastic enabled but no faults armed must
  // produce bit-identical results: generation 0 runs the exact same
  // algorithms over the exact same rank sets as the non-elastic path.
  //
  // The readiness shuffle stays off here: it emulates TensorFlow's
  // timing-dependent scheduler, which makes the *negotiated reduce
  // order* (and with it floating-point grouping) vary run to run on
  // both paths. With deterministic readiness the comparison isolates
  // exactly the elastic machinery.
  ClimateDataset dataset(TinyData());
  TrainerOptions off = TinyElasticTrainer();
  off.exchanger.shuffle_ready_order = false;
  off.elastic.enabled = false;
  TrainerOptions on = TinyElasticTrainer();
  on.exchanger.shuffle_ready_order = false;

  const TrainRunResult a = RunDistributedTraining(off, dataset, 4, 4, 8);
  const TrainRunResult b = RunDistributedTraining(on, dataset, 4, 4, 8);

  EXPECT_EQ(a.loss_history, b.loss_history);
  EXPECT_EQ(a.accuracy_history, b.accuracy_history);
  EXPECT_EQ(a.survivor_param_crcs, b.survivor_param_crcs);
  EXPECT_EQ(b.final_generation, 0);
  EXPECT_EQ(b.recoveries, 0);
  EXPECT_EQ(b.resync_bytes, 0);
  EXPECT_EQ(b.final_world_size, 4);
  EXPECT_EQ(b.survived, std::vector<char>(4, 1));
}

TEST(ElasticBitIdentity, HybridTransportAlsoMatches) {
  ClimateDataset dataset(TinyData());
  TrainerOptions off = TinyElasticTrainer();
  off.exchanger.shuffle_ready_order = false;
  off.exchanger.transport = ReduceTransport::kHybrid;
  off.exchanger.hybrid.topology.ranks_per_node = 2;
  off.exchanger.hybrid.mpi_ranks_per_node = 2;
  off.elastic.enabled = false;
  TrainerOptions on = off;
  on.elastic = TinyElasticTrainer().elastic;

  const TrainRunResult a = RunDistributedTraining(off, dataset, 4, 3, 8);
  const TrainRunResult b = RunDistributedTraining(on, dataset, 4, 3, 8);
  EXPECT_EQ(a.loss_history, b.loss_history);
  EXPECT_EQ(a.survivor_param_crcs, b.survivor_param_crcs);
}

// --------------------------------------------------------- chaos soak --
//
// Deterministic seeded schedule (DESIGN §13):
//   * rank 4 dies at its step-3 entry        -> generation 0 -> 1
//   * rank 1 dies mid-exchange at step 4     -> generation 1 -> 2
// Training continues on the shrunk world; survivors finish all 7 steps.

constexpr char kChaosSchedule[] =
    "elastic.kill.4:1:7:1:0:3,elastic.exchange.kill.1:1:9:1:0:4";

TrainRunResult RunChaosSoak(const ClimateDataset& dataset) {
  return RunDistributedTraining(TinyElasticTrainer(), dataset, /*ranks=*/6,
                                /*steps=*/7, /*images_per_rank=*/8);
}

void CheckChaosOutcome(const TrainRunResult& result) {
  EXPECT_EQ(result.survived,
            (std::vector<char>{1, 0, 1, 1, 0, 1}));
  EXPECT_EQ(result.final_world_size, 4);
  EXPECT_EQ(result.final_generation, 2);
  EXPECT_EQ(result.recoveries, 2);

  // Post-resync replicas are bit-identical across every survivor.
  const std::uint32_t crc = result.survivor_param_crcs[0];
  EXPECT_NE(crc, 0u);
  for (const int rank : {2, 3, 5}) {
    EXPECT_EQ(result.survivor_param_crcs[static_cast<std::size_t>(rank)],
              crc)
        << "rank " << rank << " diverged";
  }
  EXPECT_EQ(result.survivor_param_crcs[1], 0u);
  EXPECT_EQ(result.survivor_param_crcs[4], 0u);

  // Two recoveries re-broadcast the full parameter blob each time.
  RankTrainer probe(TinyElasticTrainer(),
                    std::vector<float>(
                        static_cast<std::size_t>(kNumClimateClasses), 1.0f),
                    0);
  EXPECT_EQ(result.resync_bytes,
            2 * probe.ParameterCount() *
                static_cast<std::int64_t>(sizeof(float)));

  // Every step index was filled in by the lowest live rank.
  ASSERT_EQ(result.loss_history.size(), 7u);
  for (const double loss : result.loss_history) {
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(loss, 0.0);
  }
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

TEST(ChaosSmoke, TrainingSurvivesTwoMidRunKills) {
  FaultScope scope;
  FaultInjector& injector = FaultInjector::Global();
  // tools/ci.sh chaos-smoke drives this test through EXACLIM_FAULTS to
  // exercise the env-driven arming path; standalone runs arm the same
  // schedule programmatically.
  if (injector.ArmFromEnv() == 0) {
    injector.ArmFromString(kChaosSchedule);
  }
  obs::Enable();
  ClimateDataset dataset(TinyData());
  const TrainRunResult result = RunChaosSoak(dataset);
  CheckChaosOutcome(result);

  if (auto* g = obs::GaugeOrNull("elastic.generation")) {
    EXPECT_EQ(g->value(), 2.0);
  }
  // 5 survivors recover from the first death, 4 from the second.
  if (auto* c = obs::CounterOrNull("elastic.recoveries")) {
    EXPECT_EQ(c->value(), 9);
  }
  if (auto* c = obs::CounterOrNull("elastic.resync_bytes")) {
    EXPECT_GT(c->value(), 0);
  }
  obs::Disable();

  // Bounded loss regression: losing a third of the world mid-run must
  // not blow the loss up relative to an unfaulted reference run.
  FaultInjector::Global().Reset();
  const TrainRunResult reference = RunChaosSoak(dataset);
  EXPECT_EQ(reference.recoveries, 0);
  EXPECT_TRUE(std::isfinite(reference.final_loss));
  EXPECT_LT(result.final_loss, reference.final_loss * 1.5 + 0.5);
}

}  // namespace
}  // namespace exaclim
