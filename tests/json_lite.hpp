#pragma once

// Minimal recursive-descent JSON parser for tests: just enough to load
// the Chrome-trace and bench-report documents the repo emits and assert
// on their structure. Not a general-purpose parser (no \uXXXX escapes,
// no streaming) — test-only code.

#include <cctype>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace exaclim::testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }

  const JsonValue* Find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  double NumberOr(const std::string& key, double fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }

  std::string StringOr(const std::string& key,
                       const std::string& fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kString ? v->string : fallback;
  }
};

class JsonParser {
 public:
  /// Parses a complete document; nullopt on any syntax error or
  /// trailing garbage.
  static std::optional<JsonValue> Parse(std::string_view text) {
    JsonParser parser(text);
    JsonValue value;
    if (!parser.ParseValue(value)) return std::nullopt;
    parser.SkipWhitespace();
    if (parser.pos_ != parser.text_.size()) return std::nullopt;
    return value;
  }

 private:
  explicit JsonParser(std::string_view text) : text_(text) {}

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseString(std::string& out) {
    if (!Consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          default: return false;  // \uXXXX unsupported
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      digits = true;
      ++pos_;
    }
    if (!digits) return false;
    out.kind = JsonValue::Kind::kNumber;
    const std::string token(text_.substr(start, pos_ - start));
    try {
      out.number = std::stod(token);
    } catch (...) {
      return false;
    }
    return true;
  }

  bool ParseValue(JsonValue& out) {  // NOLINT(misc-no-recursion)
    SkipWhitespace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::Kind::kObject;
      SkipWhitespace();
      if (Consume('}')) return true;
      for (;;) {
        std::string key;
        SkipWhitespace();
        if (!ParseString(key)) return false;
        if (!Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(value)) return false;
        out.object.emplace(std::move(key), std::move(value));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::Kind::kArray;
      SkipWhitespace();
      if (Consume(']')) return true;
      for (;;) {
        JsonValue value;
        if (!ParseValue(value)) return false;
        out.array.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return ParseString(out.string);
    }
    if (ConsumeLiteral("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (ConsumeLiteral("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (ConsumeLiteral("null")) {
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return ParseNumber(out);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace exaclim::testing
