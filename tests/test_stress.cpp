// Concurrency stress tests, labelled `stress` in CTest so the TSan
// preset can select exactly these:
//
//     cmake --preset tsan && cmake --build --preset tsan -j
//     ctest --preset tsan          # runs only -L stress
//
// They are also part of the regular suite — fast enough at thread scale.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "data/dataset.hpp"
#include "io/pipeline.hpp"
#include "nn/conv.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor.hpp"

namespace exaclim {
namespace {

Batch MakeBatch(std::int64_t index) {
  Batch b;
  b.fields = Tensor(TensorShape::NCHW(1, 1, 2, 2));
  b.fields.Data()[0] = static_cast<float>(index);
  b.labels.assign(4, 0);
  return b;
}

// Multi-producer (pipeline workers) / multi-consumer (threads calling
// Next) drain: every batch is delivered exactly once across consumers.
TEST(PipelineStress, MultiProducerMultiConsumerDrainsExactlyOnce) {
  constexpr std::int64_t kTotal = 512;
  constexpr int kConsumers = 6;
  InputPipeline pipeline(MakeBatch, kTotal,
                         {.workers = 6, .prefetch_depth = 4});

  std::atomic<std::int64_t> delivered{0};
  std::vector<std::int64_t> index_counts(kTotal);
  Mutex counts_mu;
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto batch = pipeline.Next()) {
        const auto index =
            static_cast<std::int64_t>(batch->fields.Data()[0]);
        {
          MutexLock lock(counts_mu);
          ++index_counts[static_cast<std::size_t>(index)];
        }
        delivered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : consumers) t.join();

  EXPECT_EQ(delivered.load(), kTotal);
  for (std::int64_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(index_counts[static_cast<std::size_t>(i)], 1)
        << "batch " << i << " delivered wrong number of times";
  }
}

// Regression for the shutdown path: destroy the pipeline while producers
// are mid-flight (some blocked on a full queue, some inside the producer
// function). Before the sync migration this was the TSan-visible window —
// the destructor must win cleanly against every in-flight task.
TEST(PipelineStress, DestructorBeatsInFlightProducers) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> produced{0};
    {
      InputPipeline pipeline(
          [&](std::int64_t index) {
            produced.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            return MakeBatch(index);
          },
          /*total=*/10000, {.workers = 4, .prefetch_depth = 2});
      // Consume a couple of batches, then drop the pipeline with workers
      // blocked on the bounded queue.
      ASSERT_TRUE(pipeline.Next().has_value());
      ASSERT_TRUE(pipeline.Next().has_value());
    }
    EXPECT_GT(produced.load(), 0);
    EXPECT_LT(produced.load(), 10000) << "pipeline ran to completion; "
                                         "shutdown path not exercised";
  }
}

// Immediate destruction: no Next() call at all.
TEST(PipelineStress, ImmediateDestructionIsClean) {
  for (int round = 0; round < 50; ++round) {
    InputPipeline pipeline(MakeBatch, /*total=*/1000,
                           {.workers = 4, .prefetch_depth = 2});
  }
}

// Regression for the ParallelFor completion-latch lifetime race: the
// caller could return (destroying the stack latch) while the worker that
// decremented it to zero was still signalling. Thousands of tiny
// ParallelFor calls maximise the window; TSan flags the old layout.
TEST(ThreadPoolStress, RapidForkJoinCycles) {
  ThreadPool pool(4);
  std::vector<std::int64_t> data(4096);
  std::iota(data.begin(), data.end(), 0);
  const std::int64_t expect =
      std::accumulate(data.begin(), data.end(), std::int64_t{0});
  for (int round = 0; round < 2000; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.ParallelFor(
        0, data.size(),
        [&](std::size_t lo, std::size_t hi) {
          std::int64_t local = 0;
          for (std::size_t i = lo; i < hi; ++i) local += data[i];
          sum.fetch_add(local, std::memory_order_relaxed);
        },
        /*grain=*/64);
    ASSERT_EQ(sum.load(), expect);
  }
}

// Concurrent ParallelFor callers sharing one pool (the global-pool usage
// pattern in the tensor kernels).
TEST(ThreadPoolStress, ConcurrentCallersShareOnePool) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  std::vector<std::thread> callers;
  std::vector<std::int64_t> sums(kCallers);
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 200; ++round) {
        std::atomic<std::int64_t> sum{0};
        pool.ParallelFor(
            1, 1001,
            [&](std::size_t lo, std::size_t hi) {
              std::int64_t local = 0;
              for (std::size_t i = lo; i < hi; ++i) {
                local += static_cast<std::int64_t>(i);
              }
              sum.fetch_add(local, std::memory_order_relaxed);
            },
            /*grain=*/50);
        sums[static_cast<std::size_t>(c)] = sum.load();
      }
    });
  }
  for (auto& t : callers) t.join();
  for (const auto s : sums) EXPECT_EQ(s, 500500);
}

// Pool destruction races worker wake-up: construct, submit one round,
// destroy, repeatedly.
TEST(ThreadPoolStress, RapidConstructDestroy) {
  for (int round = 0; round < 100; ++round) {
    ThreadPool pool(3);
    std::atomic<int> touched{0};
    pool.ParallelFor(
        0, 256,
        [&](std::size_t lo, std::size_t hi) {
          touched.fetch_add(static_cast<int>(hi - lo),
                            std::memory_order_relaxed);
        },
        /*grain=*/16);
    EXPECT_EQ(touched.load(), 256);
  }
}

// Batch-parallel conv backward hammered repeatedly: shard tasks write
// per-shard workspace slots and the fixed-order tree reduction merges
// them. Any cross-shard write overlap or reduction/task overlap is
// TSan-visible here, and every round must reproduce round 0's gradients
// bitwise (scheduling-invariance in practice, not just by argument).
TEST(ConvStress, BatchParallelBackwardIsRaceFreeAndStable) {
  const bool saved = ConvBatchParallelEnabled();
  SetConvBatchParallel(true);
  Rng rng(51);
  Conv2d conv("c", {.in_c = 4, .out_c = 4, .kernel = 3}, rng);
  Rng xrng(52);
  const Tensor x =
      Tensor::Uniform(TensorShape::NCHW(8, 4, 12, 12), xrng, -1.0f, 1.0f);
  Rng grng(53);
  const Tensor g =
      Tensor::Uniform(conv.OutputShape(x.shape()), grng, -1.0f, 1.0f);

  std::vector<float> reference;
  for (int round = 0; round < 50; ++round) {
    for (Param* p : conv.Params()) p->grad.SetZero();
    (void)conv.Forward(x, true);
    (void)conv.Backward(g);
    const auto& wg = conv.weight().grad;
    if (round == 0) {
      reference.assign(wg.Data().begin(), wg.Data().end());
    } else {
      for (std::int64_t i = 0; i < wg.NumElements(); ++i) {
        ASSERT_EQ(wg[static_cast<std::size_t>(i)],
                  reference[static_cast<std::size_t>(i)])
            << "round " << round << " grad " << i;
      }
    }
  }
  SetConvBatchParallel(saved);
}

// Several Conv2d layers training concurrently from caller threads, all
// sharding their batches onto the one global pool (the multi-tower usage
// pattern). Each layer owns its workspace; nothing may bleed across.
TEST(ConvStress, ConcurrentLayersShareGlobalPool) {
  const bool saved = ConvBatchParallelEnabled();
  SetConvBatchParallel(true);
  constexpr int kLayers = 4;
  std::vector<std::thread> threads;
  threads.reserve(kLayers);
  std::vector<float> checks(kLayers, 0.0f);
  for (int t = 0; t < kLayers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(60 + static_cast<std::uint64_t>(t));
      Conv2d conv("c" + std::to_string(t),
                  {.in_c = 3, .out_c = 3, .kernel = 3}, rng);
      Rng xrng(70 + static_cast<std::uint64_t>(t));
      const Tensor x = Tensor::Uniform(TensorShape::NCHW(6, 3, 10, 10),
                                       xrng, -1.0f, 1.0f);
      Rng grng(80 + static_cast<std::uint64_t>(t));
      const Tensor g =
          Tensor::Uniform(conv.OutputShape(x.shape()), grng, -1.0f, 1.0f);
      float first = 0.0f;
      for (int round = 0; round < 25; ++round) {
        for (Param* p : conv.Params()) p->grad.SetZero();
        (void)conv.Forward(x, true);
        (void)conv.Backward(g);
        const float norm = conv.weight().grad.Norm();
        if (round == 0) {
          first = norm;
        } else {
          ASSERT_EQ(norm, first) << "layer " << t << " round " << round;
        }
      }
      checks[static_cast<std::size_t>(t)] = first;
    });
  }
  for (auto& t : threads) t.join();
  for (const float c : checks) EXPECT_GT(c, 0.0f);
  SetConvBatchParallel(saved);
}

// Metrics registry under concurrent registration and recording: threads
// race to create the same handles (first-use registration) and hammer
// them. Counters must not lose increments; handle pointers must agree.
TEST(ObsStress, RegistryConcurrentRegistrationAndRecording) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<obs::Counter*> handles(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      obs::Counter* counter = registry.GetCounter("shared.counter");
      handles[static_cast<std::size_t>(t)] = counter;
      obs::Gauge* gauge = registry.GetGauge("shared.gauge");
      obs::Histogram* hist =
          registry.GetHistogram("hist." + std::to_string(t % 3));
      for (int i = 0; i < kIters; ++i) {
        counter->Increment();
        gauge->Set(static_cast<double>(i));
        hist->Record(static_cast<double>(i));
        // Interleave fresh registrations with hot recording.
        if (i % 256 == 0) {
          (void)registry.GetCounter("thread." + std::to_string(t));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared.counter")->value(),
            static_cast<std::int64_t>(kThreads) * kIters);
  for (const obs::Counter* h : handles) EXPECT_EQ(h, handles[0]);
  std::int64_t hist_total = 0;
  for (int b = 0; b < 3; ++b) {
    hist_total +=
        registry.GetHistogram("hist." + std::to_string(b))->Summary().count;
  }
  EXPECT_EQ(hist_total, static_cast<std::int64_t>(kThreads) * kIters);
}

// Trace recorder under concurrent span recording from many threads, with
// Snapshot/ToJson readers racing the writers (the report is printed while
// worker threads may still be recording).
TEST(ObsStress, TraceRecorderConcurrentSpansAndSnapshots) {
  obs::TraceRecorder recorder;
  constexpr int kWriters = 6;
  constexpr int kSpansPerWriter = 1500;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kSpansPerWriter; ++i) {
        const auto start = obs::TraceRecorder::Clock::now();
        recorder.RecordSpan("stress.span", "test", start, start);
        if (i % 100 == 0) recorder.RecordCounter("stress.counter", i);
      }
    });
  }
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)recorder.Snapshot();
      (void)recorder.ToJson();
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  std::size_t spans = 0;
  for (const auto& e : recorder.Snapshot()) {
    if (e.name == "stress.span") ++spans;
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kWriters) * kSpansPerWriter);
}

// One recorder per round, many short-lived threads: exercises the
// thread-local buffer cache across recorder generations (a stale cache
// keyed only by address would alias a dead recorder's buffer).
TEST(ObsStress, TraceRecorderGenerationsDoNotAliasThreadCache) {
  for (int round = 0; round < 20; ++round) {
    obs::TraceRecorder recorder;
    // The main thread records into every generation: its cached buffer
    // pointer from the previous (destroyed) recorder must not be reused.
    recorder.RecordCounter("gen.counter", round);
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        const auto start = obs::TraceRecorder::Clock::now();
        for (int i = 0; i < 50; ++i) {
          recorder.RecordSpan("gen.span", "test", start, start);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(recorder.Snapshot().size(), 201u);
  }
}

}  // namespace
}  // namespace exaclim
