#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/workspace.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_kernel.hpp"

namespace exaclim {
namespace {

// Reference O(mnk) GEMM with double accumulation.
std::vector<float> NaiveGemm(bool ta, bool tb, std::int64_t m, std::int64_t n,
                             std::int64_t k, float alpha,
                             const std::vector<float>& a,
                             const std::vector<float>& b, float beta,
                             std::vector<float> c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      const float prior = beta == 0.0f ? 0.0f : beta * c[i * n + j];
      c[i * n + j] = static_cast<float>(alpha * acc + prior);
    }
  }
  return c;
}

std::vector<float> RandomVec(Rng& rng, std::int64_t count) {
  std::vector<float> v(static_cast<std::size_t>(count));
  for (auto& x : v) x = rng.Uniform(-1.0f, 1.0f);
  return v;
}

// Accumulated float rounding grows with the contraction length; the naive
// reference accumulates in double, so allow k-scaled absolute error.
float Tol(std::int64_t k) {
  return 1e-4f * (1.0f + std::sqrt(static_cast<float>(k)));
}

void ExpectNear(const std::vector<float>& got, const std::vector<float>& want,
                float tol, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol) << what << " at " << i;
  }
}

/// Forces a kernel mode for the scope of one test section.
class ModeGuard {
 public:
  explicit ModeGuard(GemmKernelMode mode) : saved_(GemmKernelModeInUse()) {
    SetGemmKernelMode(mode);
  }
  ~ModeGuard() { SetGemmKernelMode(saved_); }
  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;

 private:
  GemmKernelMode saved_;
};

constexpr GemmKernelMode kBothModes[] = {GemmKernelMode::kPacked,
                                         GemmKernelMode::kReference};

// ---------------------------------------------------- mode plumbing -----

TEST(GemmKernelMode, ParseAndToString) {
  EXPECT_EQ(ParseGemmKernelMode("auto"), GemmKernelMode::kAuto);
  EXPECT_EQ(ParseGemmKernelMode("packed"), GemmKernelMode::kPacked);
  EXPECT_EQ(ParseGemmKernelMode("reference"), GemmKernelMode::kReference);
  EXPECT_FALSE(ParseGemmKernelMode("").has_value());
  EXPECT_FALSE(ParseGemmKernelMode("fast").has_value());
  EXPECT_FALSE(ParseGemmKernelMode("Packed").has_value());
  for (const GemmKernelMode mode :
       {GemmKernelMode::kAuto, GemmKernelMode::kPacked,
        GemmKernelMode::kReference}) {
    EXPECT_EQ(ParseGemmKernelMode(ToString(mode)), mode);
  }
}

TEST(GemmKernelMode, SetAndQuery) {
  const GemmKernelMode saved = GemmKernelModeInUse();
  SetGemmKernelMode(GemmKernelMode::kReference);
  EXPECT_EQ(GemmKernelModeInUse(), GemmKernelMode::kReference);
  EXPECT_FALSE(GemmUsesPackedEngine());
  SetGemmKernelMode(GemmKernelMode::kPacked);
  EXPECT_EQ(GemmKernelModeInUse(), GemmKernelMode::kPacked);
  EXPECT_TRUE(GemmUsesPackedEngine());
  SetGemmKernelMode(GemmKernelMode::kAuto);
  EXPECT_TRUE(GemmUsesPackedEngine());
  SetGemmKernelMode(saved);
}

TEST(GemmKernelMode, MicroKernelNameIsKnown) {
  const std::string name = GemmMicroKernelName();
  EXPECT_TRUE(name == "avx2-fma" || name == "neon" || name == "portable")
      << name;
  EXPECT_NE(ActiveGemmMicroKernel(), nullptr);
}

// ------------------------------------------------------- fuzzing --------

// Deterministic sweep: every transpose combo x alpha x beta on a shape
// that exercises edge strips in both m (65 = 10*MR+5) and n (63 = 3*NR+15)
// and two KC panels (k=257).
TEST(GemmKernelFuzz, TransposeAlphaBetaSweep) {
  const std::int64_t m = 65, n = 63, k = 257;
  Rng rng(101);
  const std::vector<float> a = RandomVec(rng, m * k);
  const std::vector<float> b = RandomVec(rng, k * n);
  const std::vector<float> c0 = RandomVec(rng, m * n);
  for (const GemmKernelMode mode : kBothModes) {
    const ModeGuard guard(mode);
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        for (const float alpha : {0.0f, 1.0f, -0.5f}) {
          for (const float beta : {0.0f, 1.0f, 0.7f}) {
            const std::vector<float> want =
                NaiveGemm(ta, tb, m, n, k, alpha, a, b, beta, c0);
            std::vector<float> got = c0;
            Gemm(ta, tb, m, n, k, alpha, a.data(), b.data(), beta,
                 got.data());
            ExpectNear(got, want, Tol(k), ToString(mode));
          }
        }
      }
    }
  }
}

// Randomized shapes drawn from the edge-hunting set: sizes straddling MR,
// NR, KC and the reference kernel's block sizes.
TEST(GemmKernelFuzz, RandomShapes) {
  constexpr std::int64_t kSizes[] = {1, 2, 3, 5, 17, 63, 64, 65, 257};
  constexpr std::int64_t kMaxElems = 1 << 22;  // per-trial m*n*k budget
  Rng rng(202);
  for (int trial = 0; trial < 60; ++trial) {
    std::int64_t m, n, k;
    do {
      m = kSizes[rng.Index(std::size(kSizes))];
      n = kSizes[rng.Index(std::size(kSizes))];
      k = kSizes[rng.Index(std::size(kSizes))];
    } while (m * n * k > kMaxElems);
    const bool ta = rng.Bernoulli(0.5);
    const bool tb = rng.Bernoulli(0.5);
    const float alphas[] = {0.0f, 1.0f, -0.5f};
    const float betas[] = {0.0f, 1.0f, 0.7f};
    const float alpha = alphas[rng.Index(3)];
    const float beta = betas[rng.Index(3)];
    const std::vector<float> a = RandomVec(rng, m * k);
    const std::vector<float> b = RandomVec(rng, k * n);
    const std::vector<float> c0 = RandomVec(rng, m * n);
    const std::vector<float> want =
        NaiveGemm(ta, tb, m, n, k, alpha, a, b, beta, c0);
    for (const GemmKernelMode mode : kBothModes) {
      const ModeGuard guard(mode);
      std::vector<float> got = c0;
      Gemm(ta, tb, m, n, k, alpha, a.data(), b.data(), beta, got.data());
      ExpectNear(got, want, Tol(k), ToString(mode));
    }
  }
}

// beta == 0 must overwrite C without reading it: NaN poison must not leak.
TEST(GemmKernelFuzz, BetaZeroIgnoresPoisonedC) {
  const std::int64_t m = 65, n = 63, k = 64;
  Rng rng(303);
  const std::vector<float> a = RandomVec(rng, m * k);
  const std::vector<float> b = RandomVec(rng, k * n);
  const std::vector<float> want = NaiveGemm(
      false, false, m, n, k, 1.0f, a, b, 0.0f,
      std::vector<float>(static_cast<std::size_t>(m * n), 0.0f));
  for (const GemmKernelMode mode : kBothModes) {
    const ModeGuard guard(mode);
    std::vector<float> got(static_cast<std::size_t>(m * n),
                           std::numeric_limits<float>::quiet_NaN());
    Gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, got.data());
    for (const float v : got) ASSERT_FALSE(std::isnan(v)) << ToString(mode);
    ExpectNear(got, want, Tol(k), ToString(mode));
  }
}

// alpha == 0 and k == 0 both degenerate to C *= beta, with no A/B reads.
TEST(GemmKernelFuzz, DegenerateScaleOnly) {
  const std::int64_t m = 17, n = 33;
  Rng rng(404);
  const std::vector<float> c0 = RandomVec(rng, m * n);
  for (const GemmKernelMode mode : kBothModes) {
    const ModeGuard guard(mode);
    std::vector<float> got = c0;
    Gemm(false, false, m, n, /*k=*/0, 1.0f, nullptr, nullptr, 0.7f,
         got.data());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_FLOAT_EQ(got[i], 0.7f * c0[i]);
    }
    got = c0;
    Gemm(false, false, m, n, /*k=*/64, 0.0f, nullptr, nullptr, 0.0f,
         got.data());
    for (const float v : got) ASSERT_EQ(v, 0.0f);
  }
}

// ------------------------------------------------- prepacked operand ----

TEST(GemmKernelPrepack, MatchesOnTheFlyPath) {
  const std::int64_t m = 65, n = 130, k = 257;
  Rng rng(505);
  const std::vector<float> b = RandomVec(rng, k * n);
  const std::vector<float> c0 = RandomVec(rng, m * n);
  for (const bool ta : {false, true}) {
    const std::vector<float> a = RandomVec(rng, m * k);
    for (const float alpha : {1.0f, -0.5f}) {
      for (const float beta : {0.0f, 0.7f}) {
        std::vector<float> want = c0;
        GemmPacked(ta, false, m, n, k, alpha, a.data(), b.data(), beta,
                   want.data());
        PackedGemmA packed;
        packed.Pack(ta, m, k, alpha, a.data());
        EXPECT_EQ(packed.m(), m);
        EXPECT_EQ(packed.k(), k);
        std::vector<float> got = c0;
        GemmPackedWithA(packed, false, n, b.data(), beta, got.data());
        // Same engine, same pack layout: results are bit-identical.
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], want[i]) << "ta=" << ta << " i=" << i;
        }
      }
    }
  }
}

TEST(GemmKernelPrepack, ReusableAcrossManyRightOperands) {
  const std::int64_t m = 6, n = 37, k = 29;
  Rng rng(606);
  const std::vector<float> a = RandomVec(rng, m * k);
  PackedGemmA packed;
  packed.Pack(false, m, k, 1.0f, a.data());
  for (int rep = 0; rep < 4; ++rep) {
    const std::vector<float> b = RandomVec(rng, k * n);
    const std::vector<float> want = NaiveGemm(
        false, false, m, n, k, 1.0f, a, b, 0.0f,
        std::vector<float>(static_cast<std::size_t>(m * n), 0.0f));
    std::vector<float> got(static_cast<std::size_t>(m * n));
    GemmPackedWithA(packed, false, n, b.data(), 0.0f, got.data());
    ExpectNear(got, want, Tol(k), "prepacked");
  }
}

// ------------------------------------------------- scratch workspace ----

TEST(GemmKernelScratch, PackBuffersReusedNotReallocated) {
  const ModeGuard guard(GemmKernelMode::kPacked);
  const std::int64_t m = 64, n = 128, k = 128;
  Rng rng(707);
  const std::vector<float> a = RandomVec(rng, m * k);
  const std::vector<float> b = RandomVec(rng, k * n);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  Gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  // The calling thread packs B; its scratch must be warm now and stay at
  // the same capacity across identically-shaped calls (grow-only reuse).
  const std::size_t warm = ScratchCapacity(ScratchSlot::kGemmPackB);
  EXPECT_GE(warm, static_cast<std::size_t>(kGemmNR * std::min(k, kGemmKC)));
  for (int rep = 0; rep < 3; ++rep) {
    Gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
    EXPECT_EQ(ScratchCapacity(ScratchSlot::kGemmPackB), warm);
  }
}

}  // namespace
}  // namespace exaclim
