#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gradcheck.hpp"
#include "nn/activation.hpp"
#include "nn/combine.hpp"
#include "nn/conv.hpp"
#include "nn/im2col.hpp"
#include "nn/norm.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"

namespace exaclim {
namespace {

using testing::CheckInputGradient;
using testing::CheckParamGradients;

Tensor RandomInput(TensorShape shape, std::uint64_t seed = 1) {
  Rng rng(seed);
  return Tensor::Uniform(std::move(shape), rng, -1.0f, 1.0f);
}

// ------------------------------------------------------------ Im2Col ----

TEST(Im2Col, IdentityFor1x1) {
  ConvGeometry g{.in_c = 2, .in_h = 3, .in_w = 3, .k_h = 1, .k_w = 1,
                 .stride = 1, .pad = 0, .dilation = 1};
  std::vector<float> img(18);
  std::iota(img.begin(), img.end(), 0.0f);
  std::vector<float> col(static_cast<std::size_t>(g.PatchSize()) *
                         g.OutPixels());
  Im2Col(g, img.data(), col.data());
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_EQ(col[i], img[i]);
}

TEST(Im2Col, PaddingProducesZeros) {
  ConvGeometry g{.in_c = 1, .in_h = 2, .in_w = 2, .k_h = 3, .k_w = 3,
                 .stride = 1, .pad = 1, .dilation = 1};
  std::vector<float> img{1, 2, 3, 4};
  std::vector<float> col(static_cast<std::size_t>(g.PatchSize()) *
                         g.OutPixels());
  Im2Col(g, img.data(), col.data());
  // Output pixel (0,0) with kernel offset (0,0) reads input (-1,-1) = 0.
  EXPECT_EQ(col[0], 0.0f);
  // Kernel offset (1,1) (row 4) reads input (0,0) for output (0,0).
  EXPECT_EQ(col[4 * 4 + 0], 1.0f);
  // Kernel offset (2,2) (row 8) reads input (1,1) for output (0,0).
  EXPECT_EQ(col[8 * 4 + 0], 4.0f);
}

TEST(Im2Col, DilationSamplesSparsely) {
  ConvGeometry g{.in_c = 1, .in_h = 5, .in_w = 5, .k_h = 3, .k_w = 3,
                 .stride = 1, .pad = 2, .dilation = 2};
  EXPECT_EQ(g.OutH(), 5);
  std::vector<float> img(25);
  std::iota(img.begin(), img.end(), 0.0f);
  std::vector<float> col(static_cast<std::size_t>(g.PatchSize()) *
                         g.OutPixels());
  Im2Col(g, img.data(), col.data());
  // Center output pixel (2,2), kernel offset (0,0) reads (2-2, 2-2) = (0,0).
  EXPECT_EQ(col[0 * 25 + 12], 0.0f);
  // Kernel offset (2,2) reads (2+2, 2+2) = (4,4) = 24.
  EXPECT_EQ(col[8 * 25 + 12], 24.0f);
}

TEST(Im2Col, StridedGeometry) {
  ConvGeometry g{.in_c = 1, .in_h = 7, .in_w = 7, .k_h = 3, .k_w = 3,
                 .stride = 2, .pad = 1, .dilation = 1};
  EXPECT_EQ(g.OutH(), 4);
  EXPECT_EQ(g.OutW(), 4);
}

TEST(Col2Im, IsAdjointOfIm2Col) {
  // <Im2Col(x), c> == <x, Col2Im(c)> for random x, c — the defining
  // property that makes conv backward correct.
  ConvGeometry g{.in_c = 3, .in_h = 6, .in_w = 5, .k_h = 3, .k_w = 3,
                 .stride = 2, .pad = 1, .dilation = 1};
  Rng rng(4);
  std::vector<float> x(static_cast<std::size_t>(g.in_c * g.in_h * g.in_w));
  std::vector<float> c(static_cast<std::size_t>(g.PatchSize()) *
                       g.OutPixels());
  for (auto& v : x) v = rng.Uniform(-1, 1);
  for (auto& v : c) v = rng.Uniform(-1, 1);

  std::vector<float> col(c.size());
  Im2Col(g, x.data(), col.data());
  double lhs = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    lhs += static_cast<double>(col[i]) * c[i];
  }
  std::vector<float> img(x.size(), 0.0f);
  Col2Im(g, c.data(), img.data());
  double rhs = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * img[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

// ------------------------------------------------------------ Conv2d ----

struct ConvCase {
  Conv2d::Options opts;
  std::int64_t in_h;
  std::int64_t in_w;
  const char* label;
};

class ConvGradCheck : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradCheck, InputAndParamGradients) {
  const ConvCase& tc = GetParam();
  Rng rng(10);
  Conv2d conv("conv", tc.opts, rng);
  const Tensor input =
      RandomInput(TensorShape::NCHW(2, tc.opts.in_c, tc.in_h, tc.in_w));
  const auto in_res = CheckInputGradient(conv, input);
  EXPECT_LT(in_res.max_rel_err, 2e-2) << tc.label;
  const auto p_res = CheckParamGradients(conv, input);
  EXPECT_LT(p_res.max_rel_err, 2e-2) << tc.label;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ConvGradCheck,
    ::testing::Values(
        ConvCase{{.in_c = 3, .out_c = 4, .kernel = 3}, 6, 7, "plain3x3"},
        ConvCase{{.in_c = 2, .out_c = 3, .kernel = 1, .pad = 0}, 5, 5,
                 "pointwise1x1"},
        ConvCase{{.in_c = 2, .out_c = 4, .kernel = 3, .stride = 2}, 8, 8,
                 "strided"},
        ConvCase{{.in_c = 2, .out_c = 2, .kernel = 3, .pad = 2,
                  .dilation = 2},
                 9, 9, "atrous_d2"},
        ConvCase{{.in_c = 2, .out_c = 2, .kernel = 3, .dilation = 2}, 9, 9,
                 "atrous_d2_defaultpad"},
        ConvCase{{.in_c = 2, .out_c = 2, .kernel = 3, .dilation = 4}, 11, 10,
                 "atrous_d4_defaultpad"},
        ConvCase{{.in_c = 2, .out_c = 3, .kernel = 5, .stride = 2}, 9, 9,
                 "strided_defaultpad5x5"},
        ConvCase{{.in_c = 3, .out_c = 2, .kernel = 5}, 9, 8, "kernel5x5"},
        ConvCase{{.in_c = 2, .out_c = 3, .kernel = 3, .bias = false}, 6, 6,
                 "nobias"},
        ConvCase{{.in_c = 1, .out_c = 2, .kernel = 7, .stride = 2}, 12, 12,
                 "stem7x7s2"}),
    [](const auto& info) { return info.param.label; });

TEST(Conv2d, OutputShapeMatchesPaperStem) {
  // Fig 1: 7×7 conv /2 on 1152×768 -> 576×384 (with pad 3).
  Rng rng(1);
  Conv2d conv("stem", {.in_c = 16, .out_c = 64, .kernel = 7, .stride = 2},
              rng);
  const auto out =
      conv.OutputShape(TensorShape::NCHW(1, 16, 768, 1152));
  EXPECT_EQ(out, TensorShape::NCHW(1, 64, 384, 576));
}

TEST(Conv2d, AtrousShapePreserving) {
  // ASPP atrous convs keep spatial size: pad = dilation for 3×3.
  Rng rng(1);
  for (std::int64_t d : {12, 24, 36}) {
    Conv2d conv("aspp",
                {.in_c = 8, .out_c = 8, .kernel = 3, .pad = d, .dilation = d},
                rng);
    const auto out = conv.OutputShape(TensorShape::NCHW(1, 8, 96, 144));
    EXPECT_EQ(out, TensorShape::NCHW(1, 8, 96, 144)) << "d=" << d;
  }
}

TEST(Conv2d, KnownValueSingleElement) {
  Rng rng(1);
  Conv2d conv("c", {.in_c = 1, .out_c = 1, .kernel = 1, .pad = 0}, rng);
  conv.weight().value[0] = 2.0f;
  conv.Params()[1]->value[0] = 0.5f;  // bias
  const Tensor x = Tensor::FromVector(TensorShape::NCHW(1, 1, 1, 2), {3, 4});
  const Tensor y = conv.Forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 6.5f);
  EXPECT_FLOAT_EQ(y[1], 8.5f);
}

TEST(Conv2d, RejectsWrongChannelCount) {
  Rng rng(1);
  Conv2d conv("c", {.in_c = 3, .out_c = 4}, rng);
  EXPECT_THROW(conv.OutputShape(TensorShape::NCHW(1, 2, 4, 4)), Error);
}

TEST(Conv2d, GradAccumulatesAcrossCalls) {
  Rng rng(2);
  Conv2d conv("c", {.in_c = 1, .out_c = 1, .kernel = 3}, rng);
  const Tensor x = RandomInput(TensorShape::NCHW(1, 1, 4, 4));
  (void)conv.Forward(x, true);
  (void)conv.Backward(Tensor::Full(TensorShape::NCHW(1, 1, 4, 4), 1.0f));
  const Tensor once = conv.weight().grad;
  (void)conv.Forward(x, true);
  (void)conv.Backward(Tensor::Full(TensorShape::NCHW(1, 1, 4, 4), 1.0f));
  for (std::int64_t i = 0; i < once.NumElements(); ++i) {
    EXPECT_NEAR(conv.weight().grad[static_cast<std::size_t>(i)],
                2.0f * once[static_cast<std::size_t>(i)], 1e-5f);
  }
}

// --------------------------------------------------- ConvTranspose2d ----

struct DeconvCase {
  ConvTranspose2d::Options opts;
  std::int64_t in_h;
  std::int64_t in_w;
  const char* label;
};

class DeconvGradCheck : public ::testing::TestWithParam<DeconvCase> {};

TEST_P(DeconvGradCheck, InputAndParamGradients) {
  const DeconvCase& tc = GetParam();
  Rng rng(20);
  ConvTranspose2d deconv("deconv", tc.opts, rng);
  const Tensor input =
      RandomInput(TensorShape::NCHW(2, tc.opts.in_c, tc.in_h, tc.in_w));
  const auto in_res = CheckInputGradient(deconv, input);
  EXPECT_LT(in_res.max_rel_err, 2e-2) << tc.label;
  const auto p_res = CheckParamGradients(deconv, input);
  EXPECT_LT(p_res.max_rel_err, 2e-2) << tc.label;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, DeconvGradCheck,
    ::testing::Values(
        DeconvCase{{.in_c = 3, .out_c = 2, .kernel = 3, .stride = 2}, 4, 5,
                   "upsample2x"},
        DeconvCase{{.in_c = 2, .out_c = 2, .kernel = 4, .stride = 2, .pad = 1},
                   4, 4, "kernel4"},
        DeconvCase{{.in_c = 2, .out_c = 3, .kernel = 3, .stride = 1, .pad = 1},
                   5, 5, "stride1"},
        DeconvCase{{.in_c = 2, .out_c = 2, .kernel = 3, .stride = 2,
                    .bias = false},
                   3, 3, "nobias"},
        DeconvCase{{.in_c = 2, .out_c = 2, .kernel = 3, .stride = 2,
                    .pad = 1, .out_pad = 1},
                   4, 4, "outpad_doubling"}),
    [](const auto& info) { return info.param.label; });

TEST(ConvTranspose2d, DoublesResolutionLikeFig1Decoder) {
  // Fig 1 decoder: 3×3 deconv /2 chains 144×96 -> 288×192 -> ... 1152×768.
  Rng rng(1);
  ConvTranspose2d deconv("up",
                         {.in_c = 8, .out_c = 8, .kernel = 3, .stride = 2},
                         rng);
  const auto out = deconv.OutputShape(TensorShape::NCHW(1, 8, 96, 144));
  EXPECT_EQ(out.h(), 191);  // (96-1)*2 - 2*1 + 3
  // Exact doubling requires kernel 4 or output padding; the models use
  // kernel 4 for the /2 deconvs to land on even sizes.
  ConvTranspose2d deconv4("up4",
                          {.in_c = 8, .out_c = 8, .kernel = 4, .stride = 2,
                           .pad = 1},
                          rng);
  const auto out4 = deconv4.OutputShape(TensorShape::NCHW(1, 8, 96, 144));
  EXPECT_EQ(out4, TensorShape::NCHW(1, 8, 192, 288));
}

// ----------------------------------------------------------- Pooling ----

TEST(MaxPool2d, KnownValues) {
  MaxPool2d pool("p", 2, 2, 0);
  const Tensor x = Tensor::FromVector(
      TensorShape::NCHW(1, 1, 2, 4), {1, 5, 2, 0, 3, 4, 8, 6});
  const Tensor y = pool.Forward(x, false);
  EXPECT_EQ(y.shape(), TensorShape::NCHW(1, 1, 1, 2));
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[1], 8.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool("p", 2, 2, 0);
  const Tensor x = Tensor::FromVector(
      TensorShape::NCHW(1, 1, 2, 2), {1, 5, 3, 4});
  (void)pool.Forward(x, false);
  const Tensor g =
      pool.Backward(Tensor::FromVector(TensorShape::NCHW(1, 1, 1, 1), {7}));
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 7.0f);
  EXPECT_EQ(g[2], 0.0f);
  EXPECT_EQ(g[3], 0.0f);
}

TEST(MaxPool2d, GradCheck) {
  // Perturbation must not flip an argmax: use well-separated values.
  MaxPool2d pool("p", 3, 2);
  Rng rng(3);
  Tensor x(TensorShape::NCHW(1, 2, 7, 7));
  for (std::int64_t i = 0; i < x.NumElements(); ++i) {
    x[static_cast<std::size_t>(i)] = static_cast<float>(i % 17) +
                                     rng.Uniform(0.0f, 0.05f);
  }
  const auto res = CheckInputGradient(pool, x, 1e-3);
  EXPECT_LT(res.max_rel_err, 2e-2);
}

TEST(MaxPool2d, FullyPaddedEdgeWindowsActAsZero) {
  // kernel 1, pad 1: the output border windows cover only padding. They
  // must read as 0 with no argmax, and backward must route no gradient
  // through them.
  MaxPool2d pool("p", 1, 1, 1);
  const Tensor x = Tensor::FromVector(TensorShape::NCHW(1, 1, 2, 2),
                                      {-1.0f, -2.0f, -3.0f, -4.0f});
  const Tensor y = pool.Forward(x, false);
  ASSERT_EQ(y.shape(), TensorShape::NCHW(1, 1, 4, 4));
  for (std::int64_t oy = 0; oy < 4; ++oy) {
    for (std::int64_t ox = 0; ox < 4; ++ox) {
      const bool border = oy == 0 || oy == 3 || ox == 0 || ox == 3;
      const float v = y[static_cast<std::size_t>(oy * 4 + ox)];
      if (border) {
        EXPECT_EQ(v, 0.0f) << oy << "," << ox;  // not -inf, not garbage
      } else {
        EXPECT_EQ(v, x[static_cast<std::size_t>((oy - 1) * 2 + (ox - 1))]);
      }
    }
  }
  const Tensor g =
      pool.Backward(Tensor::Full(TensorShape::NCHW(1, 1, 4, 4), 1.0f));
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(g[static_cast<std::size_t>(i)], 1.0f);  // interior only
  }
}

TEST(MaxPool2d, PaddedGradCheck) {
  // Default pad (kernel/2) produces partially- and fully-padded edge
  // windows; gradients must still match finite differences.
  MaxPool2d pool("p", 3, 2);
  Rng rng(31);
  Tensor x(TensorShape::NCHW(2, 2, 6, 6));
  for (std::int64_t i = 0; i < x.NumElements(); ++i) {
    x[static_cast<std::size_t>(i)] =
        static_cast<float>(i % 13) + rng.Uniform(0.0f, 0.05f);
  }
  const auto res = CheckInputGradient(pool, x, 1e-3);
  EXPECT_LT(res.max_rel_err, 2e-2);
}

TEST(AvgPool2d, GlobalPooling) {
  AvgPool2d pool("gap", 0, 1);
  const Tensor x = Tensor::FromVector(
      TensorShape::NCHW(1, 2, 2, 2), {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = pool.Forward(x, false);
  EXPECT_EQ(y.shape(), TensorShape::NCHW(1, 2, 1, 1));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 25.0f);
}

TEST(AvgPool2d, GradCheck) {
  AvgPool2d pool("ap", 2, 2);
  const Tensor x = RandomInput(TensorShape::NCHW(2, 2, 6, 6), 8);
  const auto res = CheckInputGradient(pool, x);
  EXPECT_LT(res.max_rel_err, 1e-2);
}

// --------------------------------------------------------- BatchNorm ----

TEST(BatchNorm2d, NormalisesToZeroMeanUnitVar) {
  Rng rng(5);
  BatchNorm2d bn("bn", 3);
  const Tensor x = Tensor::Randn(TensorShape::NCHW(4, 3, 8, 8), rng, 5.0f,
                                 3.0f);
  const Tensor y = bn.Forward(x, true);
  // gamma=1, beta=0 initially: output is normalised input.
  for (std::int64_t c = 0; c < 3; ++c) {
    double sum = 0, sumsq = 0;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t h = 0; h < 8; ++h) {
        for (std::int64_t w = 0; w < 8; ++w) {
          const double v = y.At(n, c, h, w);
          sum += v;
          sumsq += v * v;
        }
      }
    }
    const double mean = sum / (4 * 64);
    const double var = sumsq / (4 * 64) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  Rng rng(6);
  BatchNorm2d bn("bn", 2);
  const Tensor x = Tensor::Randn(TensorShape::NCHW(8, 2, 4, 4), rng, 2.0f,
                                 1.0f);
  for (int i = 0; i < 50; ++i) (void)bn.Forward(x, true);
  // After many identical batches the running stats converge to batch stats;
  // eval output should then match train output closely.
  const Tensor y_train = bn.Forward(x, true);
  const Tensor y_eval = bn.Forward(x, false);
  for (std::int64_t i = 0; i < y_train.NumElements(); ++i) {
    EXPECT_NEAR(y_train[static_cast<std::size_t>(i)],
                y_eval[static_cast<std::size_t>(i)], 0.05f);
  }
}

TEST(BatchNorm2d, GradCheckEvalMode) {
  // Gradcheck in eval mode (running stats fixed -> layer is affine).
  Rng rng(7);
  BatchNorm2d bn("bn", 2);
  const Tensor warm = Tensor::Randn(TensorShape::NCHW(4, 2, 5, 5), rng);
  (void)bn.Forward(warm, true);
  const Tensor x = RandomInput(TensorShape::NCHW(2, 2, 5, 5), 9);
  const auto in_res = CheckInputGradient(bn, x);
  EXPECT_LT(in_res.max_rel_err, 1e-2);
  const auto p_res = CheckParamGradients(bn, x);
  EXPECT_LT(p_res.max_rel_err, 1e-2);
}

TEST(BatchNorm2d, TrainModeBackwardSumsToZero) {
  // In train mode, the gradient through the batch statistics makes the
  // per-channel sum of input gradients vanish.
  Rng rng(8);
  BatchNorm2d bn("bn", 2);
  const Tensor x = Tensor::Randn(TensorShape::NCHW(3, 2, 4, 4), rng);
  (void)bn.Forward(x, true);
  Rng grng(9);
  const Tensor g =
      Tensor::Uniform(TensorShape::NCHW(3, 2, 4, 4), grng, -1, 1);
  const Tensor gin = bn.Backward(g);
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0;
    for (std::int64_t n = 0; n < 3; ++n) {
      for (std::int64_t h = 0; h < 4; ++h) {
        for (std::int64_t w = 0; w < 4; ++w) sum += gin.At(n, c, h, w);
      }
    }
    EXPECT_NEAR(sum, 0.0, 1e-3) << "c=" << c;
  }
}

// ------------------------------------------------------- Activations ----

TEST(ReLU, ForwardBackward) {
  ReLU relu("r");
  const Tensor x =
      Tensor::FromVector(TensorShape::NCHW(1, 1, 1, 4), {-1, 0, 2, -3});
  const Tensor y = relu.Forward(x, true);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  const Tensor g = relu.Backward(
      Tensor::FromVector(TensorShape::NCHW(1, 1, 1, 4), {5, 5, 5, 5}));
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[2], 5.0f);
}

TEST(Dropout, EvalIsIdentity) {
  Rng rng(1);
  Dropout drop("d", 0.5f, rng);
  const Tensor x = RandomInput(TensorShape::NCHW(1, 1, 4, 4));
  const Tensor y = drop.Forward(x, false);
  for (std::int64_t i = 0; i < x.NumElements(); ++i) {
    EXPECT_EQ(y[static_cast<std::size_t>(i)],
              x[static_cast<std::size_t>(i)]);
  }
}

TEST(Dropout, TrainPreservesExpectation) {
  Rng rng(2);
  Dropout drop("d", 0.3f, rng);
  const Tensor x = Tensor::Full(TensorShape::NCHW(1, 1, 100, 100), 1.0f);
  const Tensor y = drop.Forward(x, true);
  EXPECT_NEAR(y.Sum() / y.NumElements(), 1.0, 0.05);
  // Kept elements are scaled by exactly 1/(1-p).
  for (std::int64_t i = 0; i < y.NumElements(); ++i) {
    const float v = y[static_cast<std::size_t>(i)];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 1.0f / 0.7f) < 1e-5f);
  }
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(3);
  Dropout drop("d", 0.5f, rng);
  const Tensor x = Tensor::Full(TensorShape::NCHW(1, 1, 8, 8), 1.0f);
  const Tensor y = drop.Forward(x, true);
  const Tensor g = drop.Backward(Tensor::Full(x.shape(), 1.0f));
  for (std::int64_t i = 0; i < x.NumElements(); ++i) {
    EXPECT_EQ(g[static_cast<std::size_t>(i)],
              y[static_cast<std::size_t>(i)]);
  }
}

TEST(Dropout, RejectsInvalidRate) {
  Rng rng(1);
  EXPECT_THROW(Dropout("d", 1.0f, rng), Error);
  EXPECT_THROW(Dropout("d", -0.1f, rng), Error);
}

// ----------------------------------------------------------- Combine ----

TEST(ConcatChannels, LayoutAndSplitRoundTrip) {
  const Tensor a = Tensor::FromVector(TensorShape::NCHW(1, 1, 1, 2), {1, 2});
  const Tensor b =
      Tensor::FromVector(TensorShape::NCHW(1, 2, 1, 2), {3, 4, 5, 6});
  const Tensor cat = ConcatChannels(a, b);
  EXPECT_EQ(cat.shape(), TensorShape::NCHW(1, 3, 1, 2));
  EXPECT_EQ(cat[0], 1.0f);
  EXPECT_EQ(cat[2], 3.0f);
  EXPECT_EQ(cat[5], 6.0f);

  const std::vector<std::int64_t> channels{1, 2};
  const auto parts = SplitChannels(cat, channels);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].shape(), a.shape());
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(parts[0][static_cast<std::size_t>(i)],
              a[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(parts[1][static_cast<std::size_t>(i)],
              b[static_cast<std::size_t>(i)]);
  }
}

TEST(ConcatChannels, MultiBatch) {
  const Tensor a = Tensor::FromVector(TensorShape::NCHW(2, 1, 1, 1), {1, 2});
  const Tensor b = Tensor::FromVector(TensorShape::NCHW(2, 1, 1, 1), {3, 4});
  const Tensor cat = ConcatChannels(a, b);
  // n0: [1,3], n1: [2,4]
  EXPECT_EQ(cat[0], 1.0f);
  EXPECT_EQ(cat[1], 3.0f);
  EXPECT_EQ(cat[2], 2.0f);
  EXPECT_EQ(cat[3], 4.0f);
}

TEST(ConcatChannels, RejectsSpatialMismatch) {
  const Tensor a(TensorShape::NCHW(1, 1, 2, 2));
  const Tensor b(TensorShape::NCHW(1, 1, 3, 2));
  EXPECT_THROW(ConcatChannels(a, b), Error);
}

TEST(SliceChannels, ExtractsRange) {
  const Tensor x = Tensor::FromVector(TensorShape::NCHW(1, 3, 1, 2),
                                      {1, 2, 3, 4, 5, 6});
  const Tensor mid = SliceChannels(x, 1, 1);
  EXPECT_EQ(mid.shape(), TensorShape::NCHW(1, 1, 1, 2));
  EXPECT_EQ(mid[0], 3.0f);
  EXPECT_EQ(mid[1], 4.0f);
  EXPECT_THROW(SliceChannels(x, 2, 2), Error);
}

TEST(BilinearUpsample2d, ConstantStaysConstant) {
  BilinearUpsample2d up("u", 2);
  const Tensor x = Tensor::Full(TensorShape::NCHW(1, 1, 3, 3), 4.0f);
  const Tensor y = up.Forward(x, false);
  EXPECT_EQ(y.shape(), TensorShape::NCHW(1, 1, 6, 6));
  for (std::int64_t i = 0; i < y.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(y[static_cast<std::size_t>(i)], 4.0f);
  }
}

TEST(BilinearUpsample2d, GradCheck) {
  BilinearUpsample2d up("u", 2);
  const Tensor x = RandomInput(TensorShape::NCHW(1, 2, 4, 4), 11);
  const auto res = CheckInputGradient(up, x);
  EXPECT_LT(res.max_rel_err, 1e-2);
}

// -------------------------------------------------------- Sequential ----

TEST(Sequential, ChainsForwardBackwardAndParams) {
  Rng rng(12);
  Sequential seq("block");
  seq.Emplace<Conv2d>("c1", Conv2d::Options{.in_c = 2, .out_c = 3}, rng);
  seq.Emplace<BatchNorm2d>("bn", 3);
  seq.Emplace<ReLU>("relu");
  seq.Emplace<Conv2d>("c2", Conv2d::Options{.in_c = 3, .out_c = 1}, rng);

  EXPECT_EQ(seq.Params().size(), 2u + 2u + 2u);  // two convs(w,b) + bn(g,b)
  const auto out = seq.OutputShape(TensorShape::NCHW(1, 2, 6, 6));
  EXPECT_EQ(out, TensorShape::NCHW(1, 1, 6, 6));

  // Warm batchnorm running stats, then gradcheck in eval mode.
  const Tensor warm = RandomInput(TensorShape::NCHW(4, 2, 6, 6), 13);
  (void)seq.Forward(warm, true);
  const Tensor x = RandomInput(TensorShape::NCHW(2, 2, 6, 6), 14);
  const auto res = CheckInputGradient(seq, x);
  EXPECT_LT(res.max_rel_err, 2e-2);
}

TEST(Sequential, PrecisionPropagates) {
  Rng rng(15);
  Sequential seq("s");
  auto& conv =
      seq.Emplace<Conv2d>("c", Conv2d::Options{.in_c = 1, .out_c = 1}, rng);
  seq.SetPrecisionRecursive(Precision::kFP16);
  EXPECT_EQ(conv.precision(), Precision::kFP16);
}

TEST(Sequential, FP16OutputsAreHalfRepresentable) {
  Rng rng(16);
  Sequential seq("s");
  seq.Emplace<Conv2d>("c", Conv2d::Options{.in_c = 2, .out_c = 2}, rng);
  seq.Emplace<ReLU>("r");
  seq.SetPrecisionRecursive(Precision::kFP16);
  const Tensor x = RandomInput(TensorShape::NCHW(1, 2, 5, 5), 17);
  const Tensor y = seq.Forward(x, false);
  for (std::int64_t i = 0; i < y.NumElements(); ++i) {
    const float v = y[static_cast<std::size_t>(i)];
    EXPECT_EQ(v, Half(v).ToFloat());  // exactly representable in binary16
  }
}

}  // namespace
}  // namespace exaclim
