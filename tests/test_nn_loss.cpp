#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "gradcheck.hpp"
#include "nn/loss.hpp"

namespace exaclim {
namespace {

// Paper class frequencies (Sec V-B1): BG 98.2%, AR 1.7%, TC 0.1%.
constexpr std::array<double, 3> kPaperFrequencies{0.982, 0.017, 0.001};

Tensor RandomLogits(std::int64_t n, std::int64_t c, std::int64_t h,
                    std::int64_t w, std::uint64_t seed = 1,
                    float scale = 2.0f) {
  Rng rng(seed);
  return Tensor::Uniform(TensorShape::NCHW(n, c, h, w), rng, -scale, scale);
}

std::vector<std::uint8_t> RandomLabels(std::int64_t count, std::int64_t c,
                                       std::uint64_t seed = 2) {
  Rng rng(seed);
  std::vector<std::uint8_t> labels(static_cast<std::size_t>(count));
  for (auto& l : labels) {
    l = static_cast<std::uint8_t>(rng.Int(0, c - 1));
  }
  return labels;
}

TEST(MakeClassWeights, Schemes) {
  const auto none = MakeClassWeights(kPaperFrequencies, WeightingScheme::kNone);
  EXPECT_EQ(none, (std::vector<float>{1.0f, 1.0f, 1.0f}));

  const auto inv =
      MakeClassWeights(kPaperFrequencies, WeightingScheme::kInverse);
  EXPECT_NEAR(inv[0], 1.0 / 0.982, 1e-4);
  EXPECT_NEAR(inv[2], 1000.0, 1e-1);

  const auto sqrt_inv =
      MakeClassWeights(kPaperFrequencies, WeightingScheme::kInverseSqrt);
  EXPECT_NEAR(sqrt_inv[2], 31.62, 0.01);
}

TEST(MakeClassWeights, PaperTCFalseNegativeRatio) {
  // Sec VII-D: a TC false negative is penalised ~37x more than a false
  // positive; with inverse-sqrt weights w_TC / w_BG = sqrt(0.982/0.001).
  const auto w =
      MakeClassWeights(kPaperFrequencies, WeightingScheme::kInverseSqrt);
  EXPECT_NEAR(w[2] / w[0], 31.3, 1.0);  // same order as the paper's 37x
}

TEST(MakeClassWeights, RejectsZeroFrequency) {
  const std::array<double, 2> freq{1.0, 0.0};
  EXPECT_THROW(MakeClassWeights(freq, WeightingScheme::kInverse), Error);
}

TEST(WeightedLoss, UniformLogitsGiveLogC) {
  const Tensor logits = Tensor::Zeros(TensorShape::NCHW(1, 3, 4, 4));
  const auto labels = RandomLabels(16, 3);
  const auto res = WeightedSoftmaxCrossEntropy(logits, labels, {});
  EXPECT_NEAR(res.loss, std::log(3.0), 1e-5);
}

TEST(WeightedLoss, PerfectPredictionLowLoss) {
  Tensor logits = Tensor::Zeros(TensorShape::NCHW(1, 3, 2, 2));
  const std::vector<std::uint8_t> labels{0, 1, 2, 0};
  for (std::int64_t p = 0; p < 4; ++p) {
    logits[static_cast<std::size_t>(labels[static_cast<std::size_t>(p)] * 4 +
                                    p)] = 20.0f;
  }
  const auto res = WeightedSoftmaxCrossEntropy(logits, labels, {});
  EXPECT_LT(res.loss, 1e-6);
  EXPECT_EQ(res.pixel_accuracy, 1.0);
}

TEST(WeightedLoss, GradientMatchesFiniteDifference) {
  const std::int64_t n = 1, c = 3, h = 3, w = 3;
  Tensor logits = RandomLogits(n, c, h, w, 5);
  const auto labels = RandomLabels(n * h * w, c, 6);
  SegmentationLossOptions opts;
  const auto weights =
      MakeClassWeights(kPaperFrequencies, WeightingScheme::kInverseSqrt);
  opts.class_weights = weights;

  const auto res = WeightedSoftmaxCrossEntropy(logits, labels, opts);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.NumElements(); i += 3) {
    const auto idx = static_cast<std::size_t>(i);
    const float saved = logits[idx];
    logits[idx] = saved + static_cast<float>(eps);
    const double up =
        WeightedSoftmaxCrossEntropy(logits, labels, opts).loss;
    logits[idx] = saved - static_cast<float>(eps);
    const double down =
        WeightedSoftmaxCrossEntropy(logits, labels, opts).loss;
    logits[idx] = saved;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(res.grad_logits[idx], numeric,
                1e-3 * std::max(1.0, std::fabs(numeric)))
        << "i=" << i;
  }
}

TEST(WeightedLoss, GradientSumsToZeroOverClasses) {
  // softmax - onehot sums to zero across classes for each pixel.
  const Tensor logits = RandomLogits(2, 3, 4, 4, 7);
  const auto labels = RandomLabels(32, 3, 8);
  const auto res = WeightedSoftmaxCrossEntropy(logits, labels, {});
  const std::int64_t hw = 16;
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t p = 0; p < hw; ++p) {
      double sum = 0;
      for (std::int64_t k = 0; k < 3; ++k) {
        sum += res.grad_logits[static_cast<std::size_t>((b * 3 + k) * hw + p)];
      }
      EXPECT_NEAR(sum, 0.0, 1e-7);
    }
  }
}

TEST(WeightedLoss, LossScaleMultipliesGradientOnly) {
  const Tensor logits = RandomLogits(1, 3, 3, 3, 9);
  const auto labels = RandomLabels(9, 3, 10);
  SegmentationLossOptions base, scaled;
  scaled.loss_scale = 128.0f;
  const auto r0 = WeightedSoftmaxCrossEntropy(logits, labels, base);
  const auto r1 = WeightedSoftmaxCrossEntropy(logits, labels, scaled);
  EXPECT_DOUBLE_EQ(r0.loss, r1.loss);
  for (std::int64_t i = 0; i < r0.grad_logits.NumElements(); ++i) {
    EXPECT_NEAR(r1.grad_logits[static_cast<std::size_t>(i)],
                128.0f * r0.grad_logits[static_cast<std::size_t>(i)], 1e-6);
  }
}

TEST(WeightedLoss, WeightingScalesPerClassContribution) {
  // One pixel per class, weights {1, 10, 100}: the loss must be the
  // weighted mean of the per-pixel CE values.
  Tensor logits = Tensor::Zeros(TensorShape::NCHW(1, 3, 1, 3));
  const std::vector<std::uint8_t> labels{0, 1, 2};
  SegmentationLossOptions opts;
  // class_weights is a non-owning span: bind a named local, not a
  // temporary initializer list.
  const std::vector<float> weights{1.0f, 10.0f, 100.0f};
  opts.class_weights = weights;
  const auto res = WeightedSoftmaxCrossEntropy(logits, labels, opts);
  EXPECT_NEAR(res.loss, std::log(3.0) * (1 + 10 + 100) / 3.0, 1e-4);
}

TEST(WeightedLoss, DegenerateBackgroundPredictorAccuracy) {
  // Sec V-B1: an all-background predictor scores 98.2% pixel accuracy.
  const std::int64_t pixels = 1000;
  Tensor logits = Tensor::Zeros(TensorShape::NCHW(1, 3, 1, pixels));
  for (std::int64_t p = 0; p < pixels; ++p) {
    logits[static_cast<std::size_t>(p)] = 10.0f;  // class 0 everywhere
  }
  std::vector<std::uint8_t> labels(pixels, 0);
  for (std::int64_t p = 0; p < 17; ++p) labels[static_cast<std::size_t>(p)] = 1;
  labels[17] = 2;
  const auto res = WeightedSoftmaxCrossEntropy(logits, labels, {});
  EXPECT_NEAR(res.pixel_accuracy, 0.982, 1e-3);
}

TEST(WeightedLoss, FP16InverseWeightsOverflowButSqrtDoesNot) {
  // The Sec V-B1 stability result: with confidently-wrong predictions on
  // rare-class pixels, inverse-frequency weights push per-pixel losses
  // past the binary16 max (65504) while inverse-sqrt stays finite.
  const std::int64_t pixels = 64;
  Tensor logits = Tensor::Zeros(TensorShape::NCHW(1, 3, 1, pixels));
  std::vector<std::uint8_t> labels(pixels, 0);
  for (std::int64_t p = 0; p < 4; ++p) {
    labels[static_cast<std::size_t>(p)] = 2;  // TC pixels...
    logits[static_cast<std::size_t>(0 * pixels + p)] = 40.0f;  // ...BG sure
    logits[static_cast<std::size_t>(2 * pixels + p)] = -40.0f;
  }

  SegmentationLossOptions inv;
  inv.precision = Precision::kFP16;
  const auto inv_weights =
      MakeClassWeights(kPaperFrequencies, WeightingScheme::kInverse);
  inv.class_weights = inv_weights;
  const auto r_inv = WeightedSoftmaxCrossEntropy(logits, labels, inv);
  EXPECT_GT(r_inv.nonfinite_loss_count, 0);  // 1000 * 80 > 65504

  SegmentationLossOptions sqrt_opts = inv;
  const auto sqrt_weights =
      MakeClassWeights(kPaperFrequencies, WeightingScheme::kInverseSqrt);
  sqrt_opts.class_weights = sqrt_weights;
  const auto r_sqrt = WeightedSoftmaxCrossEntropy(logits, labels, sqrt_opts);
  EXPECT_EQ(r_sqrt.nonfinite_loss_count, 0);  // 31.6 * 80 well in range
}

TEST(WeightedLoss, FP16GradientUnderflowDetected) {
  // Confident predictions make non-label softmax values tiny; divided by
  // the pixel count they flush to zero in binary16. Loss scaling rescues
  // the ones within 1024x of the representable range.
  const std::int64_t pixels = 4096;
  const Tensor logits = RandomLogits(1, 3, 64, 64, 11, 12.0f);
  const auto labels = RandomLabels(pixels, 3, 12);
  SegmentationLossOptions unscaled;
  unscaled.precision = Precision::kFP16;
  const auto r0 = WeightedSoftmaxCrossEntropy(logits, labels, unscaled);
  EXPECT_GT(r0.flushed_grad_count, 0);

  SegmentationLossOptions scaled = unscaled;
  scaled.loss_scale = 1024.0f;
  const auto r1 = WeightedSoftmaxCrossEntropy(logits, labels, scaled);
  EXPECT_LT(r1.flushed_grad_count, r0.flushed_grad_count);
}

TEST(WeightedLoss, RejectsBadShapes) {
  const Tensor logits = Tensor::Zeros(TensorShape::NCHW(1, 3, 2, 2));
  EXPECT_THROW(WeightedSoftmaxCrossEntropy(
                   logits, std::vector<std::uint8_t>(3, 0), {}),
               Error);
  SegmentationLossOptions opts;
  const std::vector<float> bad_weights{1.0f, 2.0f};  // wrong size
  opts.class_weights = bad_weights;
  EXPECT_THROW(WeightedSoftmaxCrossEntropy(
                   logits, std::vector<std::uint8_t>(4, 0), opts),
               Error);
  EXPECT_THROW(WeightedSoftmaxCrossEntropy(
                   logits, std::vector<std::uint8_t>(4, 7), {}),
               Error);  // label out of range
}

TEST(PredictClasses, ArgmaxPerPixel) {
  Tensor logits = Tensor::Zeros(TensorShape::NCHW(1, 3, 1, 2));
  logits[static_cast<std::size_t>(0 * 2 + 0)] = 1.0f;  // pixel 0 -> class 0
  logits[static_cast<std::size_t>(2 * 2 + 1)] = 5.0f;  // pixel 1 -> class 2
  const auto pred = PredictClasses(logits);
  EXPECT_EQ(pred[0], 0);
  EXPECT_EQ(pred[1], 2);
}

}  // namespace
}  // namespace exaclim
