// Tests for the epoch runner (Sec VI validation-overhead accounting) and
// the strong-scaling mode of the at-scale model (Sec III-A).

#include <gtest/gtest.h>

#include "netsim/scale.hpp"
#include "train/epoch.hpp"

namespace exaclim {
namespace {

ClimateDataset::Options SmallData() {
  ClimateDataset::Options d;
  d.num_samples = 40;
  d.generator.height = 32;
  d.generator.width = 32;
  d.channels = {kTMQ, kU850, kV850, kPSL};
  return d;
}

TrainerOptions SmallTrainer() {
  TrainerOptions o;
  o.arch = TrainerOptions::Arch::kTiramisu;
  o.tiramisu = Tiramisu::Config::Downscaled(4);
  o.learning_rate = 2e-3f;
  return o;
}

TEST(EpochRunner, LossFallsAcrossEpochs) {
  const ClimateDataset dataset(SmallData());
  TrainerOptions trainer = SmallTrainer();
  trainer.learning_rate = 1e-3f;
  trainer.local_batch = 2;
  EpochRunnerOptions opts;
  opts.epochs = 4;
  opts.steps_per_epoch = 15;
  opts.validation_samples = 2;
  const auto result = RunEpochs(trainer, dataset, opts);
  ASSERT_EQ(result.train_loss.size(), 4u);
  ASSERT_EQ(result.validation_miou.size(), 4u);
  EXPECT_LT(result.train_loss.back(), result.train_loss.front());
}

TEST(EpochRunner, ValidationOverheadIsSmallFraction) {
  // Sec VI: the per-epoch validation pass is "negligible once amortized
  // over the steps" — with epoch-sized step counts it stays a small
  // fraction of wall time.
  const ClimateDataset dataset(SmallData());
  EpochRunnerOptions opts;
  opts.epochs = 2;
  opts.steps_per_epoch = 25;
  opts.validation_samples = 2;
  const auto result = RunEpochs(SmallTrainer(), dataset, opts);
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_LT(result.ValidationFraction(), 0.25);
}

TEST(EpochRunner, AugmentedTrainingRuns) {
  const ClimateDataset dataset(SmallData());
  EpochRunnerOptions opts;
  opts.epochs = 2;
  opts.steps_per_epoch = 10;
  opts.validation_samples = 2;
  opts.augment = true;
  opts.augment_options.meridional_channels = {2};
  const auto result = RunEpochs(SmallTrainer(), dataset, opts);
  for (const double l : result.train_loss) {
    EXPECT_TRUE(std::isfinite(l));
  }
}

// ------------------------------------------------------ StrongScaling ---

ScaleOptions SummitDeepLab() {
  // FP16 configuration (anchored local batch 2) so the strong-scaling
  // sweep can shrink the per-GPU batch below the weak-scaling setting.
  ScaleOptions o;
  o.machine = MachineModel::Summit();
  o.spec = PaperDeepLabSpec(16);
  o.precision = Precision::kFP16;
  o.local_batch = 2;
  o.lag = 1;
  o.anchor_samples_per_sec = 2.67;
  o.anchor_tf_per_sample = 14.41;
  return o;
}

TEST(StrongScaling, SingleGpuIsBaseline) {
  ScaleSimulator sim(SummitDeepLab());
  const auto p = sim.SimulateStrongScaling(1, 1024);
  EXPECT_NEAR(p.efficiency, 1.0, 1e-9);
}

TEST(StrongScaling, EfficiencyDecaysFasterThanWeakScaling) {
  // The Sec III-A rationale for preferring weak scaling: with a fixed
  // global batch, per-GPU work shrinks while the fixed costs do not.
  ScaleSimulator sim(SummitDeepLab());
  // With more GPUs than anchored-batch-sized shares, the fixed per-step
  // cost replicates across GPUs and efficiency collapses.
  EXPECT_LT(sim.SimulateStrongScaling(4096, 4096).efficiency,
            sim.SimulateStrongScaling(1024, 4096).efficiency);
  EXPECT_LT(sim.SimulateStrongScaling(1024, 4096).efficiency,
            sim.SimulateStrongScaling(256, 4096).efficiency);
  // At the per-GPU-batch-of-1 point it is strictly below weak scaling at
  // the same GPU count (which keeps the batch at the anchored size).
  EXPECT_LT(sim.SimulateStrongScaling(4096, 4096).efficiency,
            sim.Simulate(4096).efficiency);
}

TEST(StrongScaling, ThroughputStillImprovesBeforeTheWall) {
  ScaleSimulator sim(SummitDeepLab());
  const auto p256 = sim.SimulateStrongScaling(256, 4096);
  const auto p1024 = sim.SimulateStrongScaling(1024, 4096);
  EXPECT_GT(p1024.images_per_sec, p256.images_per_sec);
  // Time-to-batch shrinks: that is the point of strong scaling when
  // hyperparameters cap the global batch.
  EXPECT_LT(p1024.step_seconds, p256.step_seconds);
}

TEST(StrongScaling, RejectsFewerSamplesThanGpus) {
  ScaleSimulator sim(SummitDeepLab());
  EXPECT_THROW((void)sim.SimulateStrongScaling(4096, 1024), Error);
}

}  // namespace
}  // namespace exaclim
