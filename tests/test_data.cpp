#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/climate.hpp"
#include "data/dataset.hpp"
#include "data/labeler.hpp"
#include "stats/stats.hpp"

namespace exaclim {
namespace {

ClimateDataset::Options SmallOptions() {
  ClimateDataset::Options opts;
  opts.num_samples = 50;
  opts.generator.height = 64;
  opts.generator.width = 96;
  return opts;
}

// ----------------------------------------------------------- Channels ---

TEST(ClimateChannels, NamesMatchCAM5Variables) {
  EXPECT_EQ(ChannelName(kTMQ), "TMQ");
  EXPECT_EQ(ChannelName(kPSL), "PSL");
  EXPECT_EQ(ChannelName(kPRECT), "PRECT");
  EXPECT_EQ(ChannelName(kZBOT), "ZBOT");
  EXPECT_THROW(ChannelName(16), Error);
  EXPECT_THROW(ChannelName(-1), Error);
}

// ---------------------------------------------------------- Generator ---

TEST(ClimateGenerator, DeterministicPerSeedAndIndex) {
  ClimateGenerator gen({});
  const auto a = gen.Generate(7, 3);
  const auto b = gen.Generate(7, 3);
  ASSERT_EQ(a.fields.NumElements(), b.fields.NumElements());
  for (std::int64_t i = 0; i < a.fields.NumElements(); ++i) {
    ASSERT_EQ(a.fields[static_cast<std::size_t>(i)],
              b.fields[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(a.truth, b.truth);
  const auto c = gen.Generate(7, 4);
  EXPECT_NE(c.truth, a.truth);  // different index, different weather
}

TEST(ClimateGenerator, ShapesAndFiniteness) {
  ClimateGeneratorOptions opts;
  opts.height = 48;
  opts.width = 80;
  ClimateGenerator gen(opts);
  const auto s = gen.Generate(1, 0);
  EXPECT_EQ(s.fields.shape(),
            TensorShape({kNumClimateChannels, 48, 80}));
  EXPECT_EQ(s.truth.size(), static_cast<std::size_t>(48 * 80));
  EXPECT_TRUE(s.fields.AllFinite());
}

TEST(ClimateGenerator, CycloneSignaturesAreConsistent) {
  // Wherever the truth mask says TC, the area must show a PSL depression
  // and elevated TMQ relative to the sample means.
  ClimateGenerator gen({});
  int tc_samples = 0;
  for (int idx = 0; idx < 30 && tc_samples < 5; ++idx) {
    const auto s = gen.Generate(11, idx);
    const std::int64_t hw = s.height * s.width;
    double psl_mean = 0, tmq_mean = 0;
    for (std::int64_t p = 0; p < hw; ++p) {
      psl_mean += s.fields[static_cast<std::size_t>(kPSL * hw + p)];
      tmq_mean += s.fields[static_cast<std::size_t>(kTMQ * hw + p)];
    }
    psl_mean /= hw;
    tmq_mean /= hw;
    double psl_tc = 0, tmq_tc = 0;
    std::int64_t tc_pixels = 0;
    for (std::int64_t p = 0; p < hw; ++p) {
      if (s.truth[static_cast<std::size_t>(p)] == kTropicalCyclone) {
        psl_tc += s.fields[static_cast<std::size_t>(kPSL * hw + p)];
        tmq_tc += s.fields[static_cast<std::size_t>(kTMQ * hw + p)];
        ++tc_pixels;
      }
    }
    if (tc_pixels < 10) continue;
    ++tc_samples;
    EXPECT_LT(psl_tc / tc_pixels, psl_mean - 0.5) << "idx=" << idx;
    EXPECT_GT(tmq_tc / tc_pixels, tmq_mean + 0.5) << "idx=" << idx;
  }
  EXPECT_GE(tc_samples, 3) << "generator produced too few cyclones";
}

TEST(ClimateGenerator, TruthClassImbalanceMatchesPaperRegime) {
  // Sec V-B1 regime: BG dominates; AR a few percent; TC well under 1%.
  ClimateGenerator gen({});
  std::array<std::int64_t, 3> counts{};
  std::int64_t total = 0;
  for (int idx = 0; idx < 50; ++idx) {
    const auto s = gen.Generate(3, idx);
    for (const auto l : s.truth) ++counts[l];
    total += static_cast<std::int64_t>(s.truth.size());
  }
  const double bg = static_cast<double>(counts[0]) / total;
  const double ar = static_cast<double>(counts[1]) / total;
  const double tc = static_cast<double>(counts[2]) / total;
  EXPECT_GT(bg, 0.93);
  EXPECT_GT(ar, 0.003);
  EXPECT_LT(ar, 0.06);
  EXPECT_GT(tc, 0.0002);
  EXPECT_LT(tc, 0.012);
}

// -------------------------------------------------- ConnectedComponents --

TEST(ConnectedComponents, TwoSeparateBlobs) {
  // Interior blobs (away from the periodic seam):
  //  . X X . .
  //  . X . Y .
  const std::vector<std::uint8_t> mask{0, 1, 1, 0, 0, 0, 1, 0, 1, 0};
  const auto cc = ConnectedComponents(mask, 2, 5);
  EXPECT_EQ(cc.count, 2);
  EXPECT_EQ(cc.ids[1], cc.ids[2]);
  EXPECT_EQ(cc.ids[1], cc.ids[6]);
  EXPECT_NE(cc.ids[8], cc.ids[1]);
  EXPECT_EQ(cc.ids[0], -1);
}

TEST(ConnectedComponents, LongitudeWrapsPeriodically) {
  // Blob touching both vertical edges is one component on a globe.
  const std::vector<std::uint8_t> mask{1, 0, 0, 0, 1};
  const auto cc = ConnectedComponents(mask, 1, 5);
  EXPECT_EQ(cc.count, 1);
  EXPECT_EQ(cc.ids[0], cc.ids[4]);
}

TEST(ConnectedComponents, EmptyMask) {
  const std::vector<std::uint8_t> mask(12, 0);
  const auto cc = ConnectedComponents(mask, 3, 4);
  EXPECT_EQ(cc.count, 0);
}

// ------------------------------------------------------------ Labeler ---

TEST(HeuristicLabeler, AgreesReasonablyWithPlantedTruth) {
  // The heuristics are imperfect by design (the paper's labels were too),
  // but must broadly recover the planted events.
  ClimateDataset ds(SmallOptions());
  ConfusionMatrix cm(kNumClimateClasses);
  for (std::int64_t i = 0; i < 20; ++i) {
    const auto s = ds.GetSample(DatasetSplit::kTrain, i);
    cm.Add(s.labels, s.truth);
  }
  EXPECT_GT(cm.PixelAccuracy(), 0.95);
  EXPECT_GT(cm.IoU(kAtmosphericRiver), 0.3);
  EXPECT_GT(cm.IoU(kTropicalCyclone), 0.3);
}

TEST(HeuristicLabeler, FindsNothingOnQuietFields) {
  ClimateSample quiet;
  quiet.height = 32;
  quiet.width = 32;
  quiet.fields = Tensor(TensorShape{kNumClimateChannels, 32, 32});
  quiet.truth.assign(32 * 32, kBackground);
  HeuristicLabeler labeler;
  const auto labels = labeler.Label(quiet);
  for (const auto l : labels) EXPECT_EQ(l, kBackground);
}

TEST(HeuristicLabeler, WarmCoreCriterionRejectsColdLows) {
  // A deep low without a warm core (extratropical storm) must NOT be
  // labelled TC — the TECA multi-variate criterion at work.
  ClimateSample s;
  s.height = 32;
  s.width = 32;
  s.fields = Tensor(TensorShape{kNumClimateChannels, 32, 32});
  s.truth.assign(32 * 32, kBackground);
  const std::int64_t hw = 32 * 32;
  auto set_disc = [&](int channel, float value) {
    for (std::int64_t y = 12; y < 20; ++y) {
      for (std::int64_t x = 12; x < 20; ++x) {
        s.fields[static_cast<std::size_t>(channel * hw + y * 32 + x)] =
            value;
      }
    }
  };
  set_disc(kPSL, -3.0f);   // deep low
  set_disc(kU850, 2.5f);   // strong winds
  set_disc(kT200, -0.5f);  // COLD core
  HeuristicLabeler labeler;
  auto labels = labeler.Label(s);
  EXPECT_EQ(std::count(labels.begin(), labels.end(), kTropicalCyclone), 0);

  set_disc(kT200, 1.0f);  // now a warm core
  labels = labeler.Label(s);
  EXPECT_GT(std::count(labels.begin(), labels.end(), kTropicalCyclone), 0);
}

// ------------------------------------------------------------ Dataset ---

TEST(ClimateDataset, SplitSizes80_10_10) {
  ClimateDataset::Options opts = SmallOptions();
  opts.num_samples = 100;
  ClimateDataset ds(opts);
  EXPECT_EQ(ds.size(DatasetSplit::kTrain), 80);
  EXPECT_EQ(ds.size(DatasetSplit::kTest), 10);
  EXPECT_EQ(ds.size(DatasetSplit::kValidation), 10);
}

TEST(ClimateDataset, SplitsAreDisjoint) {
  // Samples are generated from the global index, so the first validation
  // sample differs from every train sample with the same local index.
  ClimateDataset ds(SmallOptions());
  const auto train0 = ds.GetSample(DatasetSplit::kTrain, 0);
  const auto val0 = ds.GetSample(DatasetSplit::kValidation, 0);
  bool identical = true;
  for (std::int64_t i = 0; i < train0.fields.NumElements() && identical;
       ++i) {
    identical = train0.fields[static_cast<std::size_t>(i)] ==
                val0.fields[static_cast<std::size_t>(i)];
  }
  EXPECT_FALSE(identical);
}

TEST(ClimateDataset, BatchAssemblyShapes) {
  ClimateDataset ds(SmallOptions());
  const std::vector<std::int64_t> idx{0, 3, 5};
  const Batch batch = ds.MakeBatch(DatasetSplit::kTrain, idx);
  EXPECT_EQ(batch.fields.shape(),
            TensorShape::NCHW(3, kNumClimateChannels, 64, 96));
  EXPECT_EQ(batch.labels.size(), static_cast<std::size_t>(3 * 64 * 96));
}

TEST(ClimateDataset, ChannelSubsetSelectsPizDaintVariables) {
  ClimateDataset::Options opts = SmallOptions();
  opts.channels.assign(kPizDaintChannels.begin(), kPizDaintChannels.end());
  ClimateDataset ds(opts);
  EXPECT_EQ(ds.num_channels(), 4);
  const std::vector<std::int64_t> idx{2};
  const Batch batch = ds.MakeBatch(DatasetSplit::kTrain, idx);
  EXPECT_EQ(batch.fields.shape().c(), 4);

  // Channel 3 of the subset batch must equal full channel kPSL.
  ClimateDataset::Options full_opts = SmallOptions();
  ClimateDataset full(full_opts);
  const Batch full_batch = full.MakeBatch(DatasetSplit::kTrain, idx);
  const std::int64_t hw = 64 * 96;
  for (std::int64_t p = 0; p < hw; p += 17) {
    EXPECT_EQ(batch.fields[static_cast<std::size_t>(3 * hw + p)],
              full_batch.fields[static_cast<std::size_t>(kPSL * hw + p)]);
  }
}

TEST(ClimateDataset, LocalShardsDifferAcrossRanksButAreDeterministic) {
  ClimateDataset ds(SmallOptions());
  const auto shard0 = ds.LocalShard(0, 20);
  const auto shard0_again = ds.LocalShard(0, 20);
  const auto shard1 = ds.LocalShard(1, 20);
  EXPECT_EQ(shard0, shard0_again);
  EXPECT_NE(shard0, shard1);
  for (const auto idx : shard0) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, ds.size(DatasetSplit::kTrain));
  }
}

TEST(ClimateDataset, MeasuredFrequenciesShowPaperImbalance) {
  ClimateDataset ds(SmallOptions());
  const auto freq = ds.MeasureFrequencies(20);
  EXPECT_GT(freq[kBackground], 0.90);
  EXPECT_LT(freq[kTropicalCyclone], 0.02);
  EXPECT_NEAR(freq[0] + freq[1] + freq[2], 1.0, 1e-6);
}

TEST(ClimateDataset, TruthLabelsModeBypassesHeuristics) {
  ClimateDataset::Options opts = SmallOptions();
  opts.use_heuristic_labels = false;
  ClimateDataset ds(opts);
  const auto s = ds.GetSample(DatasetSplit::kTrain, 1);
  EXPECT_EQ(s.labels, s.truth);
}

// -------------------------------------------------------------- Stats ---

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.375), 2.5);
}

TEST(Stats, SummarizeProducesCentral68CI) {
  std::vector<double> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(i);
  }
  const auto s = Summarize(v);
  EXPECT_NEAR(s.median, 499.5, 1.0);
  EXPECT_NEAR(s.lo, 160.0, 2.0);
  EXPECT_NEAR(s.hi, 839.0, 2.0);
}

TEST(Stats, MovingAverageWindow) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6};
  const auto ma = MovingAverage(v, 3);
  EXPECT_DOUBLE_EQ(ma[0], 1.0);
  EXPECT_DOUBLE_EQ(ma[1], 1.5);
  EXPECT_DOUBLE_EQ(ma[2], 2.0);
  EXPECT_DOUBLE_EQ(ma[5], 5.0);
}

TEST(ConfusionMatrixTest, IoUKnownValues) {
  ConfusionMatrix cm(2);
  // 3 TP of class 1, 1 FP, 1 FN, 5 TN.
  for (int i = 0; i < 3; ++i) cm.AddOne(1, 1);
  cm.AddOne(1, 0);
  cm.AddOne(0, 1);
  for (int i = 0; i < 5; ++i) cm.AddOne(0, 0);
  EXPECT_DOUBLE_EQ(cm.IoU(1), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(cm.IoU(0), 5.0 / 7.0);
  EXPECT_DOUBLE_EQ(cm.PixelAccuracy(), 0.8);
  EXPECT_DOUBLE_EQ(cm.LabelFrequency(1), 0.4);
}

TEST(ConfusionMatrixTest, AbsentClassCountsAsPerfect) {
  ConfusionMatrix cm(3);
  cm.AddOne(0, 0);
  EXPECT_DOUBLE_EQ(cm.IoU(2), 1.0);
}

TEST(ConfusionMatrixTest, DegenerateAllBackgroundPredictor) {
  // The Sec V-B1 anecdote in metric form: predicting all-BG on a
  // 98.2%-BG label set gives high accuracy but zero minority IoU.
  ConfusionMatrix cm(3);
  std::vector<std::uint8_t> pred(1000, 0);
  std::vector<std::uint8_t> labels(1000, 0);
  for (int i = 0; i < 17; ++i) labels[static_cast<std::size_t>(i)] = 1;
  labels[17] = 2;
  cm.Add(pred, labels);
  EXPECT_NEAR(cm.PixelAccuracy(), 0.982, 1e-3);
  EXPECT_DOUBLE_EQ(cm.IoU(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.IoU(2), 0.0);
  EXPECT_LT(cm.MeanIoU(), 0.4);
}

}  // namespace
}  // namespace exaclim
