#include <gtest/gtest.h>

#include <filesystem>

#include "data/augment.hpp"
#include "train/checkpoint.hpp"
#include "train/trainer.hpp"

namespace exaclim {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("exaclim_ckpt_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  Rng rng(1);
  Tiramisu model(Tiramisu::Config::Downscaled(4), rng);
  const auto path = dir_ / "model.ncf";
  EXPECT_GT(SaveCheckpoint(path, model.Params()), 1000);

  Rng rng2(999);  // different init
  Tiramisu restored(Tiramisu::Config::Downscaled(4), rng2);
  LoadCheckpoint(path, restored.Params());

  const auto a = model.Params();
  const auto b = restored.Params();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i]->value.NumElements(), b[i]->value.NumElements());
    for (std::int64_t j = 0; j < a[i]->value.NumElements(); ++j) {
      ASSERT_EQ(a[i]->value[static_cast<std::size_t>(j)],
                b[i]->value[static_cast<std::size_t>(j)])
          << a[i]->name;
    }
  }
}

TEST_F(CheckpointTest, RestoredModelProducesIdenticalOutputs) {
  Rng rng(2);
  Tiramisu model(Tiramisu::Config::Downscaled(4), rng);
  Rng xrng(3);
  const Tensor x =
      Tensor::Uniform(TensorShape::NCHW(1, 4, 16, 16), xrng, -1, 1);
  // Warm batch norms so running stats matter... then note: running stats
  // are NOT parameters, so eval outputs differ unless stats are fresh.
  const Tensor y = model.Forward(x, false);

  const auto path = dir_ / "model.ncf";
  SaveCheckpoint(path, model.Params());
  Rng rng2(4);
  Tiramisu restored(Tiramisu::Config::Downscaled(4), rng2);
  LoadCheckpoint(path, restored.Params());
  const Tensor y2 = restored.Forward(x, false);
  for (std::int64_t i = 0; i < y.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(y[static_cast<std::size_t>(i)],
                    y2[static_cast<std::size_t>(i)]);
  }
}

TEST_F(CheckpointTest, ArchitectureMismatchThrows) {
  Rng rng(5);
  Tiramisu small(Tiramisu::Config::Downscaled(4), rng);
  const auto path = dir_ / "small.ncf";
  SaveCheckpoint(path, small.Params());

  Tiramisu::Config bigger = Tiramisu::Config::Downscaled(4);
  bigger.growth_rate = 8;  // different widths
  Rng rng2(6);
  Tiramisu other(bigger, rng2);
  EXPECT_THROW(LoadCheckpoint(path, other.Params()), Error);
}

TEST_F(CheckpointTest, MissingParameterThrows) {
  Rng rng(7);
  Conv2d conv("lonely", {.in_c = 2, .out_c = 2}, rng);
  Param extra("not_in_file", Tensor::Zeros(TensorShape{3}));
  const auto path = dir_ / "conv.ncf";
  SaveCheckpoint(path, conv.Params());
  std::vector<Param*> wanted = conv.Params();
  wanted.push_back(&extra);
  EXPECT_THROW(LoadCheckpoint(path, wanted), Error);
}

// ------------------------------------------------------------ Augment ---

Batch MakeBatch(std::int64_t n, std::int64_t c, std::int64_t h,
                std::int64_t w, std::uint64_t seed = 1) {
  Rng rng(seed);
  Batch b;
  b.fields = Tensor::Uniform(TensorShape::NCHW(n, c, h, w), rng, -1, 1);
  b.labels.resize(static_cast<std::size_t>(n * h * w));
  for (auto& l : b.labels) {
    l = static_cast<std::uint8_t>(rng.Int(0, 2));
  }
  return b;
}

TEST(Augment, RollLongitudeIsPeriodicShift) {
  Batch b = MakeBatch(1, 1, 2, 5);
  const Batch original = b;
  RollLongitude(b, 2, 2, 5);
  for (std::int64_t y = 0; y < 2; ++y) {
    for (std::int64_t x = 0; x < 5; ++x) {
      EXPECT_EQ(b.fields.At(0, 0, y, (x + 2) % 5),
                original.fields.At(0, 0, y, x));
      EXPECT_EQ(b.labels[static_cast<std::size_t>(y * 5 + (x + 2) % 5)],
                original.labels[static_cast<std::size_t>(y * 5 + x)]);
    }
  }
}

TEST(Augment, FullRollIsIdentity) {
  Batch b = MakeBatch(2, 3, 4, 6);
  const Batch original = b;
  RollLongitude(b, 6, 4, 6);
  for (std::int64_t i = 0; i < b.fields.NumElements(); ++i) {
    EXPECT_EQ(b.fields[static_cast<std::size_t>(i)],
              original.fields[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(b.labels, original.labels);
}

TEST(Augment, MirrorLatitudeFlipsAndNegatesMeridionalWind) {
  Batch b = MakeBatch(1, 2, 4, 3);
  const Batch original = b;
  const std::vector<std::int64_t> v_channels{1};
  MirrorLatitude(b, v_channels, 4, 3);
  for (std::int64_t y = 0; y < 4; ++y) {
    for (std::int64_t x = 0; x < 3; ++x) {
      EXPECT_EQ(b.fields.At(0, 0, y, x),
                original.fields.At(0, 0, 3 - y, x));
      EXPECT_EQ(b.fields.At(0, 1, y, x),
                -original.fields.At(0, 1, 3 - y, x));
      EXPECT_EQ(b.labels[static_cast<std::size_t>(y * 3 + x)],
                original.labels[static_cast<std::size_t>((3 - y) * 3 + x)]);
    }
  }
}

TEST(Augment, DoubleMirrorIsIdentity) {
  Batch b = MakeBatch(2, 2, 6, 4);
  const Batch original = b;
  const std::vector<std::int64_t> v_channels{0};
  MirrorLatitude(b, v_channels, 6, 4);
  MirrorLatitude(b, v_channels, 6, 4);
  for (std::int64_t i = 0; i < b.fields.NumElements(); ++i) {
    EXPECT_EQ(b.fields[static_cast<std::size_t>(i)],
              original.fields[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(b.labels, original.labels);
}

TEST(Augment, AugmentBatchPreservesClassCounts) {
  // Rolls/mirrors permute pixels; the label histogram is invariant.
  Batch b = MakeBatch(2, 3, 8, 8, 9);
  std::array<int, 3> before{};
  for (const auto l : b.labels) ++before[l];
  AugmentOptions opts;
  opts.meridional_channels = {2};
  opts.noise_stddev = 0.0f;
  Rng rng(4);
  AugmentBatch(b, opts, rng, 8, 8);
  std::array<int, 3> after{};
  for (const auto l : b.labels) ++after[l];
  EXPECT_EQ(before, after);
}

TEST(Augment, HeuristicLabelsCommuteWithRoll) {
  // Labelling then rolling == rolling then labelling: the TECA-style
  // heuristics are equivariant to the periodic shift, which is what
  // makes the augmentation label-consistent.
  ClimateGenerator gen({.height = 32, .width = 48});
  HeuristicLabeler labeler;
  ClimateSample sample = gen.Generate(3, 1);
  labeler.LabelInPlace(sample);

  Batch b;
  b.fields = sample.fields.Reshaped(
      TensorShape::NCHW(1, kNumClimateChannels, 32, 48));
  b.labels = sample.labels;
  RollLongitude(b, 11, 32, 48);

  ClimateSample rolled;
  rolled.height = 32;
  rolled.width = 48;
  rolled.fields =
      b.fields.Reshaped(TensorShape{kNumClimateChannels, 32, 48});
  rolled.truth.assign(32 * 48, 0);
  const auto relabelled = labeler.Label(rolled);
  EXPECT_EQ(relabelled, b.labels);
}

TEST(Augment, TrainingWithAugmentationStillConverges) {
  ClimateDataset::Options d;
  d.num_samples = 40;
  d.generator.height = 32;
  d.generator.width = 32;
  d.channels = {kTMQ, kU850, kV850, kPSL};
  const ClimateDataset dataset(d);
  TrainerOptions o;
  o.arch = TrainerOptions::Arch::kTiramisu;
  o.tiramisu = Tiramisu::Config::Downscaled(4);
  o.learning_rate = 2e-3f;
  const auto freq = dataset.MeasureFrequencies(8);
  RankTrainer trainer(
      o, MakeClassWeights(freq, WeightingScheme::kInverseSqrt), 0);

  AugmentOptions aug;
  aug.meridional_channels = {2};  // V850 within the 4-channel subset
  Rng rng(17);
  // Random augmentation makes per-step losses noisy; compare the mean of
  // the first and last 8 steps.
  double head = 0, tail = 0;
  const int steps = 40;
  for (int s = 0; s < steps; ++s) {
    std::vector<std::int64_t> idx{
        rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1)};
    Batch batch = dataset.MakeBatch(DatasetSplit::kTrain, idx);
    AugmentBatch(batch, aug, rng, 32, 32);
    const auto r = trainer.Step(batch);
    if (s < 8) head += r.loss;
    if (s >= steps - 8) tail += r.loss;
  }
  EXPECT_LT(tail, head);
}

}  // namespace
}  // namespace exaclim
