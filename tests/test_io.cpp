#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <thread>

#include "comm/world.hpp"
#include "common/error.hpp"
#include "data/climate.hpp"
#include "io/ncf.hpp"
#include "io/pipeline.hpp"
#include "io/sample_io.hpp"
#include "io/staging.hpp"

namespace exaclim {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("exaclim_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  fs::path operator/(const std::string& name) const { return dir_ / name; }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

// ----------------------------------------------------------------- NCF --

TEST(Ncf, RoundTripFloatAndBytes) {
  TempDir tmp;
  const auto path = tmp / "a.ncf";
  std::vector<float> floats(1000);
  std::iota(floats.begin(), floats.end(), 0.5f);
  std::vector<std::uint8_t> bytes{1, 2, 3, 250};
  {
    NcfWriter writer(path);
    writer.AddFloat("field", floats);
    writer.AddBytes("mask", bytes);
    const auto total = writer.Finish();
    EXPECT_GT(total, 4000);
  }
  NcfReader reader(path);
  EXPECT_TRUE(reader.Has("field"));
  EXPECT_TRUE(reader.Has("mask"));
  EXPECT_FALSE(reader.Has("absent"));
  EXPECT_EQ(reader.Count("field"), 1000);
  EXPECT_EQ(reader.ReadFloat("field"), floats);
  EXPECT_EQ(reader.ReadBytes("mask"), bytes);
  EXPECT_EQ(reader.Names(), (std::vector<std::string>{"field", "mask"}));
}

TEST(Ncf, DtypeMismatchThrows) {
  TempDir tmp;
  const auto path = tmp / "b.ncf";
  NcfWriter writer(path);
  writer.AddFloat("x", std::vector<float>{1.0f});
  writer.Finish();
  NcfReader reader(path);
  EXPECT_THROW(reader.ReadBytes("x"), Error);
  EXPECT_THROW(reader.ReadFloat("nope"), Error);
}

TEST(Ncf, RejectsGarbageFile) {
  TempDir tmp;
  const auto path = tmp / "garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not an ncf file at all";
  }
  EXPECT_THROW(NcfReader reader(path), Error);
}

TEST(Ncf, MissingFileThrows) {
  EXPECT_THROW(NcfReader reader("/nonexistent/path.ncf"), Error);
}

TEST(SampleIo, ClimateSampleRoundTrip) {
  TempDir tmp;
  ClimateGenerator gen({});
  ClimateSample sample = gen.Generate(5, 0);
  sample.labels = sample.truth;  // pretend labelled
  const auto path = tmp / "sample.ncf";
  WriteSampleFile(path, sample);
  const ClimateSample loaded = ReadSampleFile(path);
  EXPECT_EQ(loaded.height, sample.height);
  EXPECT_EQ(loaded.width, sample.width);
  EXPECT_EQ(loaded.truth, sample.truth);
  EXPECT_EQ(loaded.labels, sample.labels);
  for (std::int64_t i = 0; i < sample.fields.NumElements(); i += 97) {
    EXPECT_EQ(loaded.fields[static_cast<std::size_t>(i)],
              sample.fields[static_cast<std::size_t>(i)]);
  }
}

TEST(Ncf, GlobalLockSerialisesReaders) {
  // With the HDF5-style lock, 4 threads reading take ~4x one thread's
  // wall time; without it they overlap in the filesystem cache. We can't
  // measure timing robustly on 1 core, but we CAN verify both modes
  // return identical data and are thread-safe.
  TempDir tmp;
  const auto path = tmp / "c.ncf";
  std::vector<float> data(50000);
  std::iota(data.begin(), data.end(), 0.0f);
  {
    NcfWriter writer(path);
    writer.AddFloat("x", data);
    writer.Finish();
  }
  for (const bool lock : {false, true}) {
    NcfReader reader(path, lock);
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int round = 0; round < 5; ++round) {
          if (reader.ReadFloat("x") != data) mismatches.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(mismatches.load(), 0) << "lock=" << lock;
  }
}

// ------------------------------------------------------------- Staging --

TEST(MockGlobalFs, CountsReads) {
  MockGlobalFs fs_store;
  fs_store.Put(3, std::vector<std::byte>(10));
  (void)fs_store.Read(3);
  (void)fs_store.Read(3);
  EXPECT_EQ(fs_store.reads(3), 2);
  EXPECT_EQ(fs_store.total_reads(), 2);
  EXPECT_EQ(fs_store.total_bytes_read(), 20);
  EXPECT_THROW(fs_store.Read(4), Error);
}

TEST(StageDataset, EveryFileReadFromFsExactlyOnce) {
  // The headline property of the Sec V-A1 stager (vs 23x duplication).
  const int p = 8;
  const int num_files = 40;
  MockGlobalFs fs_store;
  for (int f = 0; f < num_files; ++f) {
    std::vector<std::byte> contents(16 + static_cast<std::size_t>(f));
    for (std::size_t i = 0; i < contents.size(); ++i) {
      contents[i] = static_cast<std::byte>((f * 7 + static_cast<int>(i)) % 251);
    }
    fs_store.Put(f, std::move(contents));
  }
  // Each rank needs a random-ish overlapping subset.
  std::vector<std::set<int>> needs(p);
  for (int r = 0; r < p; ++r) {
    Rng rng(100 + r);
    for (int k = 0; k < 15; ++k) {
      needs[static_cast<std::size_t>(r)].insert(
          static_cast<int>(rng.Int(0, num_files - 1)));
    }
  }
  std::set<int> union_needs;
  for (const auto& s : needs) union_needs.insert(s.begin(), s.end());

  SimWorld world(p);
  std::atomic<int> wrong_contents{0};
  world.Run([&](Communicator& comm) {
    const auto staged = StageDataset(
        comm, fs_store, needs[static_cast<std::size_t>(comm.rank())],
        num_files);
    EXPECT_EQ(staged.size(),
              needs[static_cast<std::size_t>(comm.rank())].size());
    for (const auto& [f, contents] : staged) {
      std::vector<std::byte> expected(16 + static_cast<std::size_t>(f));
      for (std::size_t i = 0; i < expected.size(); ++i) {
        expected[i] =
            static_cast<std::byte>((f * 7 + static_cast<int>(i)) % 251);
      }
      if (contents != expected) wrong_contents.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong_contents.load(), 0);
  // Exactly one filesystem read per needed file; unneeded files untouched.
  EXPECT_EQ(fs_store.total_reads(),
            static_cast<std::int64_t>(union_needs.size()));
  for (const int f : union_needs) EXPECT_EQ(fs_store.reads(f), 1);
}

TEST(StageNaive, DuplicatesReads) {
  const int p = 6;
  MockGlobalFs fs_store;
  fs_store.Put(0, std::vector<std::byte>(8));
  const std::set<int> everyone_wants{0};
  for (int r = 0; r < p; ++r) (void)StageNaive(fs_store, everyone_wants);
  EXPECT_EQ(fs_store.reads(0), p);  // the pathology the stager removes
}

// -------------------------------------------------------- StagingModel --

TEST(StagingModel, ThreadScalingMatchesPaper) {
  StagingModel model;
  EXPECT_NEAR(model.NodeReadBandwidth(1), 1.79e9, 1e7);
  // Sec V-A1: 8 threads -> 11.98 GB/s (6.7x improvement).
  EXPECT_NEAR(model.NodeReadBandwidth(8) / 1e9, 11.98, 0.5);
  EXPECT_NEAR(model.NodeReadBandwidth(8) / model.NodeReadBandwidth(1), 6.7,
              0.3);
  // NIC cap binds eventually.
  EXPECT_LE(model.NodeReadBandwidth(64), model.options().node_nic_bw);
}

TEST(StagingModel, DuplicationFactorAt1024Nodes) {
  StagingModel model;
  // "each individual file ... read by 23 nodes on average" at 1024 nodes.
  EXPECT_NEAR(model.DuplicationFactor(1024), 24.4, 1.5);
}

TEST(StagingModel, PaperTimeBoundsHold) {
  StagingModel model;
  // Naive at 1024 nodes: 10-20 minutes.
  const double naive_1024 = model.NaiveStageSeconds(1024, 8);
  EXPECT_GT(naive_1024, 10 * 60.0);
  EXPECT_LT(naive_1024, 20 * 60.0);
  // Distributed: under 3 minutes at 1024 nodes, under 7 at 4500.
  EXPECT_LT(model.DistributedStageSeconds(1024, 8), 3 * 60.0);
  EXPECT_LT(model.DistributedStageSeconds(4500, 8), 7 * 60.0);
  // And the distributed stager is much faster than naive at scale.
  EXPECT_LT(model.DistributedStageSeconds(1024, 8) * 5, naive_1024);
}

TEST(StagingModel, DistributedScalesBetterThanNaive) {
  StagingModel model;
  // Naive time grows with node count (more duplicate reads through a
  // fixed-bandwidth filesystem); distributed time stays bounded.
  EXPECT_GT(model.NaiveStageSeconds(4096, 8),
            model.NaiveStageSeconds(1024, 8) * 3);
  EXPECT_LT(model.DistributedStageSeconds(4096, 8),
            model.DistributedStageSeconds(1024, 8) * 3);
}

// ------------------------------------------------------- InputPipeline --

Batch TinyBatch(std::int64_t index) {
  Batch b;
  b.fields = Tensor::Full(TensorShape::NCHW(1, 1, 2, 2),
                          static_cast<float>(index));
  b.labels.assign(4, static_cast<std::uint8_t>(index % 3));
  return b;
}

TEST(InputPipeline, DeliversAllBatchesExactlyOnce) {
  InputPipeline pipeline(TinyBatch, 20, {.workers = 3, .prefetch_depth = 2});
  std::multiset<int> seen;
  while (auto batch = pipeline.Next()) {
    seen.insert(static_cast<int>(batch->fields[0]));
  }
  EXPECT_EQ(seen.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(seen.count(i), 1u) << i;
}

TEST(InputPipeline, PrefetchQueueBounded) {
  std::atomic<int> in_flight{0};
  std::atomic<int> max_queue{0};
  InputPipeline pipeline(
      [&](std::int64_t index) {
        in_flight.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        in_flight.fetch_sub(1);
        return TinyBatch(index);
      },
      50, {.workers = 4, .prefetch_depth = 3});
  // Give producers a head start, then drain slowly.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  int count = 0;
  while (auto batch = pipeline.Next()) {
    max_queue.store(std::max<int>(max_queue.load(),
                                  static_cast<int>(pipeline.Stats().depth)));
    ++count;
  }
  EXPECT_EQ(count, 50);
  EXPECT_LE(max_queue.load(), 3);
  const PipelineStats stats = pipeline.Stats();
  EXPECT_EQ(stats.total, 50);
  EXPECT_EQ(stats.produced, 50);
  EXPECT_EQ(stats.consumed, 50);
  EXPECT_EQ(stats.depth, 0u);
  EXPECT_GT(stats.produce_seconds, 0.0);  // producers sleep 1ms per batch
}

TEST(InputPipeline, ProducerParallelismHidesLatency) {
  // Producers that sleep (I/O-bound, like file reads) overlap even on one
  // core: 4 workers x 5ms batches should finish ~4x faster than serial.
  using Clock = std::chrono::steady_clock;
  const auto produce = [](std::int64_t index) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return TinyBatch(index);
  };
  const auto run = [&](int workers) {
    const auto start = Clock::now();
    InputPipeline pipeline(produce, 24,
                           {.workers = workers, .prefetch_depth = 24});
    while (pipeline.Next()) {
    }
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  const double serial = run(1);
  const double parallel = run(4);
  EXPECT_LT(parallel, serial * 0.6);
}

TEST(InputPipeline, DestructorStopsEarlyCleanly) {
  // Consumer abandons the pipeline after one batch; destructor must not
  // hang even with blocked producers.
  auto pipeline = std::make_unique<InputPipeline>(
      TinyBatch, 1000, InputPipeline::Options{.workers = 2,
                                              .prefetch_depth = 1});
  EXPECT_TRUE(pipeline->Next().has_value());
  pipeline.reset();
  SUCCEED();
}

TEST(InputPipeline, WorksWithRealSampleFiles) {
  // End-to-end: write NCF sample files, read them back through the
  // pipeline with parallel lock-free readers (the Sec V-A2 fixed config).
  TempDir tmp;
  ClimateGenerator gen({.height = 32, .width = 48});
  const int n = 6;
  std::vector<fs::path> paths;
  for (int i = 0; i < n; ++i) {
    ClimateSample s = gen.Generate(9, i);
    s.labels = s.truth;
    paths.push_back(tmp / ("s" + std::to_string(i) + ".ncf"));
    WriteSampleFile(paths.back(), s);
  }
  InputPipeline pipeline(
      [&](std::int64_t index) {
        const ClimateSample s =
            ReadSampleFile(paths[static_cast<std::size_t>(index)]);
        Batch b;
        b.fields = s.fields.Reshaped(
            TensorShape::NCHW(1, kNumClimateChannels, s.height, s.width));
        b.labels = s.labels;
        return b;
      },
      n, {.workers = 3, .prefetch_depth = 2});
  int count = 0;
  while (auto batch = pipeline.Next()) {
    EXPECT_EQ(batch->fields.shape().c(), kNumClimateChannels);
    EXPECT_TRUE(batch->fields.AllFinite());
    ++count;
  }
  EXPECT_EQ(count, n);
}

}  // namespace
}  // namespace exaclim
