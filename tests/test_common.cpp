#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace exaclim {
namespace {

// ---------------------------------------------------------------- Half ---

TEST(Half, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    const Half h(static_cast<float>(i));
    EXPECT_EQ(h.ToFloat(), static_cast<float>(i)) << "i=" << i;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(Half(1.0f).bits(), 0x3c00u);
  EXPECT_EQ(Half(-1.0f).bits(), 0xbc00u);
  EXPECT_EQ(Half(0.5f).bits(), 0x3800u);
  EXPECT_EQ(Half(2.0f).bits(), 0x4000u);
  EXPECT_EQ(Half(65504.0f).bits(), 0x7bffu);  // max finite
  EXPECT_EQ(Half(0.0f).bits(), 0x0000u);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000u);
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(Half(65520.0f).IsInf());  // first value rounding to inf
  EXPECT_TRUE(Half(1e6f).IsInf());
  EXPECT_TRUE(Half(-1e6f).IsInf());
  EXPECT_FALSE(Half(65504.0f).IsInf());
  // 65519.996 rounds down to 65504 (nearest-even at the boundary).
  EXPECT_EQ(Half(65519.0f).bits(), 0x7bffu);
}

TEST(Half, SubnormalsRoundTrip) {
  const float min_sub = std::ldexp(1.0f, -24);
  EXPECT_EQ(Half(min_sub).bits(), 0x0001u);
  EXPECT_EQ(Half::MinSubnormal().ToFloat(), min_sub);
  // Below half the smallest subnormal flushes to zero.
  EXPECT_EQ(Half(min_sub / 4.0f).bits(), 0x0000u);
  // Exactly half of min subnormal: round-to-nearest-even -> zero.
  EXPECT_EQ(Half(min_sub / 2.0f).bits(), 0x0000u);
  // Slightly above half rounds up to the min subnormal.
  EXPECT_EQ(Half(min_sub * 0.51f).bits(), 0x0001u);
}

TEST(Half, NanPropagation) {
  const Half h(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(h.IsNan());
  EXPECT_FALSE(h.IsFinite());
  EXPECT_TRUE(std::isnan(h.ToFloat()));
  EXPECT_FALSE(h == h);
}

TEST(Half, InfinityRoundTrip) {
  const Half pos(std::numeric_limits<float>::infinity());
  const Half neg(-std::numeric_limits<float>::infinity());
  EXPECT_TRUE(pos.IsInf());
  EXPECT_TRUE(neg.IsInf());
  EXPECT_EQ(pos.ToFloat(), std::numeric_limits<float>::infinity());
  EXPECT_EQ(neg.ToFloat(), -std::numeric_limits<float>::infinity());
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10):
  // ties to even -> 1.0.
  EXPECT_EQ(Half(1.0f + 1.0f / 2048.0f).bits(), Half(1.0f).bits());
  // 1 + 3*2^-11 ties between 1+2^-10 and 1+2^-9 -> picks even (1+2^-9).
  EXPECT_EQ(Half(1.0f + 3.0f / 2048.0f).bits(), Half(1.0f + 2.0f / 1024.0f).bits());
}

TEST(Half, AllBitPatternsRoundTripThroughFloat) {
  // Every finite binary16 value converts to float and back bit-exactly.
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const Half h = Half::FromBits(static_cast<std::uint16_t>(bits));
    if (h.IsNan()) continue;
    const Half round_trip(h.ToFloat());
    EXPECT_EQ(round_trip.bits(), h.bits()) << "bits=" << bits;
  }
}

TEST(Half, RelativeErrorBound) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.Uniform(-60000.0f, 60000.0f);
    const float q = Half(v).ToFloat();
    if (std::fabs(v) >= std::ldexp(1.0f, -14)) {  // normal range
      // Round-to-nearest guarantees error <= |v| * u, u = 2^-11.
      EXPECT_LE(std::fabs(q - v), std::fabs(v) * kHalfEpsilonRel * 1.0001f)
          << "v=" << v;
    }
  }
}

TEST(Half, Arithmetic) {
  EXPECT_EQ((Half(1.5f) + Half(2.5f)).ToFloat(), 4.0f);
  EXPECT_EQ((Half(3.0f) * Half(2.0f)).ToFloat(), 6.0f);
  EXPECT_EQ((-Half(2.0f)).ToFloat(), -2.0f);
  Half acc(0.0f);
  for (int i = 0; i < 10; ++i) acc += Half(0.25f);
  EXPECT_EQ(acc.ToFloat(), 2.5f);
}

TEST(Half, AdditionSwampingShowsPrecisionLoss) {
  // In binary16, 2048 + 1 == 2048: the core of the Sec V-B1 stability
  // problem with extreme loss weights.
  EXPECT_EQ((Half(2048.0f) + Half(1.0f)).ToFloat(), 2048.0f);
  EXPECT_EQ((Half(2048.0f) + Half(2.0f)).ToFloat(), 2050.0f);
}

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng base(7);
  Rng s0 = base.Fork(0);
  Rng s1 = base.Fork(1);
  EXPECT_NE(s0.seed(), s1.seed());
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0.Uniform() == s1.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(9), b(9);
  EXPECT_EQ(a.Fork(3).seed(), b.Fork(3).seed());
}

TEST(Rng, IntBounds) {
  Rng rng(1);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.Int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0f, 3.0f);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

// ---------------------------------------------------------- ThreadPool ---

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(
      0, 10,
      [&](std::size_t lo, std::size_t hi) {
        calls.fetch_add(1);
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 10u);
      },
      1024);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<double> values(50000);
  std::iota(values.begin(), values.end(), 1.0);
  std::atomic<std::int64_t> parallel_sum{0};
  pool.ParallelFor(
      0, values.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::int64_t local = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          local += static_cast<std::int64_t>(values[i]);
        }
        parallel_sum.fetch_add(local);
      },
      128);
  EXPECT_EQ(parallel_sum.load(), 50000ll * 50001ll / 2);
}

TEST(ThreadPool, ReentrantSequentialUse) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(0, 1000,
                     [&](std::size_t lo, std::size_t hi) {
                       count.fetch_add(static_cast<int>(hi - lo));
                     },
                     8);
    EXPECT_EQ(count.load(), 1000);
  }
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0u);  // caller-only execution
  std::atomic<int> count{0};
  pool.ParallelFor(0, 100, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // Nesting policy (DESIGN §9): a ParallelFor issued from inside another
  // ParallelFor block executes its full range inline on the calling
  // thread, so batch-parallel conv shards can call Gemm (itself a
  // ParallelFor user) without deadlocking or oversubscribing.
  ThreadPool pool(4);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  std::atomic<int> outer_items{0};
  std::atomic<int> outer_blocks{0};
  std::atomic<long long> nested_sum{0};
  pool.ParallelFor(
      0, 6,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_TRUE(ThreadPool::InParallelRegion());
        int inner_calls = 0;
        long long local = 0;
        pool.ParallelFor(
            0, 500,
            [&](std::size_t b, std::size_t e) {
              ++inner_calls;
              for (std::size_t i = b; i < e; ++i) {
                local += static_cast<long long>(i);
              }
            },
            /*grain=*/1);
        EXPECT_EQ(inner_calls, 1);  // one inline block over [0, 500)
        nested_sum.fetch_add(local);
        outer_blocks.fetch_add(1);
        outer_items.fetch_add(static_cast<int>(hi - lo));
      },
      /*grain=*/1);
  EXPECT_EQ(outer_items.load(), 6);
  EXPECT_EQ(nested_sum.load(), outer_blocks.load() * (499ll * 500ll / 2));
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPool, NestedAcrossDistinctPoolsRunsInline) {
  // The depth marker is per-thread, not per-pool: work issued to a second
  // pool from inside a first pool's block still runs inline.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> inner_calls{0};
  outer.ParallelFor(
      0, 4,
      [&](std::size_t, std::size_t) {
        inner.ParallelFor(
            0, 100, [&](std::size_t, std::size_t) { inner_calls.fetch_add(1); },
            /*grain=*/1);
      },
      /*grain=*/1);
  // Each outer block triggers exactly one inline inner call, and the
  // number of outer blocks equals min(workers+1, 4) under grain 1 — just
  // assert inline behaviour per call.
  EXPECT_GE(inner_calls.load(), 1);
  EXPECT_LE(inner_calls.load(), 4);
}

// ------------------------------------------------------------- Check ----

TEST(Check, ThrowsWithContext) {
  try {
    EXACLIM_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(EXACLIM_CHECK(2 + 2 == 4, "unused"));
}

}  // namespace
}  // namespace exaclim
