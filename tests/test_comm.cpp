#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/world.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace exaclim {
namespace {

// Per-rank payload: rank-dependent values so reductions are checkable.
std::vector<float> RankPayload(int rank, std::size_t n) {
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(rank + 1) * 0.5f +
              static_cast<float>(i) * 0.25f;
  }
  return data;
}

std::vector<float> ExpectedSum(int world, std::size_t n) {
  std::vector<float> sum(n, 0.0f);
  for (int r = 0; r < world; ++r) {
    const auto p = RankPayload(r, n);
    for (std::size_t i = 0; i < n; ++i) sum[i] += p[i];
  }
  return sum;
}

TEST(SimWorld, PingPong) {
  SimWorld world(2);
  world.Run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.SendValue(1, 5, 42);
      EXPECT_EQ(comm.RecvValue<int>(1, 6), 43);
    } else {
      EXPECT_EQ(comm.RecvValue<int>(0, 5), 42);
      comm.SendValue(0, 6, 43);
    }
  });
  EXPECT_EQ(world.total_messages(), 2);
  EXPECT_EQ(world.total_bytes(), 2 * static_cast<std::int64_t>(sizeof(int)));
}

TEST(SimWorld, TagMatchingOutOfOrder) {
  SimWorld world(2);
  world.Run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.SendValue(1, 10, 1.0f);
      comm.SendValue(1, 20, 2.0f);
    } else {
      // Receive in reverse tag order: matching must skip the first
      // message.
      EXPECT_EQ(comm.RecvValue<float>(0, 20), 2.0f);
      EXPECT_EQ(comm.RecvValue<float>(0, 10), 1.0f);
    }
  });
}

TEST(SimWorld, AnySourceReceivesFromAll) {
  SimWorld world(5);
  world.Run([](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<bool> seen(5, false);
      for (int i = 0; i < 4; ++i) {
        int src = -1;
        const int payload = comm.RecvValue<int>(kAnySource, 7, &src);
        EXPECT_EQ(payload, src * 10);
        seen[static_cast<std::size_t>(src)] = true;
      }
      for (int r = 1; r < 5; ++r) EXPECT_TRUE(seen[static_cast<std::size_t>(r)]);
    } else {
      comm.SendValue(0, 7, comm.rank() * 10);
    }
  });
}

TEST(SimWorld, ExceptionOnOneRankPoisonsBlockedPeers) {
  SimWorld world(3);
  EXPECT_THROW(world.Run([](Communicator& comm) {
                 if (comm.rank() == 1) throw Error("rank 1 died");
                 // Other ranks block on a message that never comes; the
                 // poison must wake them.
                 (void)comm.RecvValue<int>(1, 99);
               }),
               Error);
}

TEST(SimWorld, ReusableAcrossRuns) {
  SimWorld world(3);
  for (int round = 0; round < 3; ++round) {
    world.Run([](Communicator& comm) { Barrier(comm); });
  }
  SUCCEED();
}

TEST(SimWorld, RecvSizeMismatchThrows) {
  SimWorld world(2);
  EXPECT_THROW(world.Run([](Communicator& comm) {
                 if (comm.rank() == 0) {
                   comm.SendValue(1, 3, 1.0);  // 8 bytes
                 } else {
                   (void)comm.RecvValue<float>(0, 3);  // expects 4
                 }
               }),
               Error);
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BarrierCompletes) {
  SimWorld world(GetParam());
  std::atomic<int> after{0};
  world.Run([&](Communicator& comm) {
    Barrier(comm);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), GetParam());
}

TEST_P(CollectiveSizes, BroadcastDistributesRootData) {
  const int n = GetParam();
  SimWorld world(n);
  const int root = n > 2 ? 2 : 0;
  world.Run([&](Communicator& comm) {
    std::vector<float> data(17, comm.rank() == root ? 3.5f : 0.0f);
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (comm.rank() == root) data[i] += static_cast<float>(i);
    }
    Broadcast(comm, root, data);
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_FLOAT_EQ(data[i], 3.5f + static_cast<float>(i));
    }
  });
}

TEST_P(CollectiveSizes, ReduceSumsToRoot) {
  const int n = GetParam();
  SimWorld world(n);
  const auto expected = ExpectedSum(n, 23);
  world.Run([&](Communicator& comm) {
    auto data = RankPayload(comm.rank(), 23);
    Reduce(comm, 0, data);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i], expected[i], 1e-4f);
      }
    }
  });
}

TEST_P(CollectiveSizes, AllreduceAllAlgorithmsAgree) {
  const int n = GetParam();
  const std::size_t len = 41;
  const auto expected = ExpectedSum(n, len);
  for (const auto algo : {AllreduceAlgo::kRing, AllreduceAlgo::kTree,
                          AllreduceAlgo::kRecursiveDoubling}) {
    SimWorld world(n);
    world.Run([&](Communicator& comm) {
      auto data = RankPayload(comm.rank(), len);
      Allreduce(comm, data, algo);
      for (std::size_t i = 0; i < len; ++i) {
        EXPECT_NEAR(data[i], expected[i], 1e-3f)
            << ToString(algo) << " n=" << n << " i=" << i;
      }
    });
  }
}

TEST_P(CollectiveSizes, ReduceScatterThenAllgatherEqualsAllreduce) {
  const int n = GetParam();
  const std::size_t len = 37;  // deliberately not divisible by n
  const auto expected = ExpectedSum(n, len);
  SimWorld world(n);
  world.Run([&](Communicator& comm) {
    auto data = RankPayload(comm.rank(), len);
    ReduceScatterRing(comm, data);
    AllgatherRing(comm, data);
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_NEAR(data[i], expected[i], 1e-3f) << "i=" << i;
    }
  });
}

TEST_P(CollectiveSizes, ReduceScatterOwnedShardIsCorrect) {
  const int n = GetParam();
  const std::size_t len = 29;
  const auto expected = ExpectedSum(n, len);
  SimWorld world(n);
  world.Run([&](Communicator& comm) {
    auto data = RankPayload(comm.rank(), len);
    ReduceScatterRing(comm, data);
    // Rank r owns shard (r+1) mod n after the ring.
    const auto shards = ComputeShards(len, n);
    const auto& own = shards[static_cast<std::size_t>((comm.rank() + 1) % n)];
    for (std::size_t i = own.offset; i < own.offset + own.count; ++i) {
      EXPECT_NEAR(data[i], expected[i], 1e-3f);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 13));

TEST(ComputeShards, EvenAndUneven) {
  const auto even = ComputeShards(12, 4);
  for (const auto& s : even) EXPECT_EQ(s.count, 3u);
  const auto uneven = ComputeShards(10, 4);
  EXPECT_EQ(uneven[0].count, 3u);
  EXPECT_EQ(uneven[1].count, 3u);
  EXPECT_EQ(uneven[2].count, 2u);
  EXPECT_EQ(uneven[3].count, 2u);
  std::size_t total = 0;
  for (const auto& s : uneven) {
    EXPECT_EQ(s.offset, total);
    total += s.count;
  }
  EXPECT_EQ(total, 10u);
}

TEST(ComputeShards, MorePartsThanElements) {
  const auto shards = ComputeShards(2, 4);
  EXPECT_EQ(shards[0].count, 1u);
  EXPECT_EQ(shards[1].count, 1u);
  EXPECT_EQ(shards[2].count, 0u);
  EXPECT_EQ(shards[3].count, 0u);
}

TEST(Gather, ConcatenatesRankMajor) {
  SimWorld world(4);
  world.Run([](Communicator& comm) {
    const std::vector<float> mine{static_cast<float>(comm.rank()),
                                  static_cast<float>(comm.rank()) + 0.5f};
    std::vector<float> out(comm.rank() == 1 ? 8 : 0);
    Gather(comm, 1, mine, out);
    if (comm.rank() == 1) {
      for (int r = 0; r < 4; ++r) {
        EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(2 * r)],
                        static_cast<float>(r));
        EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(2 * r + 1)],
                        static_cast<float>(r) + 0.5f);
      }
    }
  });
}

TEST(Topology, SummitMapping) {
  const Topology summit{.ranks_per_node = 6};
  EXPECT_EQ(summit.NodeOf(0), 0);
  EXPECT_EQ(summit.NodeOf(5), 0);
  EXPECT_EQ(summit.NodeOf(6), 1);
  EXPECT_EQ(summit.LocalRank(8), 2);
  EXPECT_EQ(summit.GlobalRank(2, 3), 15);
  EXPECT_EQ(summit.NumNodes(27360), 4560);  // full Summit (Sec VII-B)
}

TEST(AllreduceCounters, RingUsesFewerBytesThanTreeAtScale) {
  // Ring all-reduce moves 2*(n-1)/n of the data per rank; tree moves the
  // whole buffer up and down the tree — at the root's links the tree is
  // bandwidth-bound. Check aggregate byte counts reflect the known
  // asymptotics.
  const int n = 8;
  const std::size_t len = 1024;
  std::int64_t ring_bytes = 0, tree_bytes = 0;
  {
    SimWorld world(n);
    world.Run([&](Communicator& comm) {
      auto data = RankPayload(comm.rank(), len);
      Allreduce(comm, data, AllreduceAlgo::kRing);
    });
    ring_bytes = world.total_bytes();
  }
  {
    SimWorld world(n);
    world.Run([&](Communicator& comm) {
      auto data = RankPayload(comm.rank(), len);
      Allreduce(comm, data, AllreduceAlgo::kTree);
    });
    tree_bytes = world.total_bytes();
  }
  // Ring total bytes = n * 2*(n-1)/n * len * 4 = 2*(n-1)*len*4.
  EXPECT_EQ(ring_bytes, 2 * (n - 1) * static_cast<std::int64_t>(len) * 4);
  // Tree: (n-1) sends for reduce + (n-1) for broadcast, each full length.
  EXPECT_EQ(tree_bytes, 2 * (n - 1) * static_cast<std::int64_t>(len) * 4);
  // Same totals, but the tree concentrates traffic: per-rank max matters,
  // which netsim models; here we only validate totals.
}

}  // namespace
}  // namespace exaclim
